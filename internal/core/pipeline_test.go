package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
	"ammboost/internal/workload"
)

// TestPipelineDepthEquivalence pins the pipelined lifecycle's determinism
// acceptance: PipelineDepth 1 (the unpipelined PR 3 reference schedule)
// and deeper pipelines produce bit-identical epoch summary roots AND
// sync payload digests, for seeds {1, 42, 1337} × shard counts
// {1, 4, 16}. Only timing may differ between depths — never state.
func TestPipelineDepthEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		for _, shards := range []int{1, 4, 16} {
			base := runMultiFingerprint(t, seed, shards, 1)
			if len(base.roots) == 0 {
				t.Fatalf("seed=%d shards=%d: no summary roots recorded", seed, shards)
			}
			for _, depth := range []int{2, 3} {
				got := runMultiFingerprint(t, seed, shards, depth)
				if len(got.roots) != len(base.roots) {
					t.Fatalf("seed=%d shards=%d depth=%d: %d epochs, want %d",
						seed, shards, depth, len(got.roots), len(base.roots))
				}
				for e, root := range base.roots {
					if got.roots[e] != root {
						t.Errorf("seed=%d shards=%d depth=%d: epoch %d summary root diverged",
							seed, shards, depth, e)
					}
				}
				for e, digests := range base.payloads {
					other := got.payloads[e]
					if len(other) != len(digests) {
						t.Errorf("seed=%d shards=%d depth=%d: epoch %d has %d payloads, want %d",
							seed, shards, depth, e, len(other), len(digests))
						continue
					}
					for i, d := range digests {
						if other[i] != d {
							t.Errorf("seed=%d shards=%d depth=%d: epoch %d payload %d digest diverged",
								seed, shards, depth, e, i)
						}
					}
				}
			}
		}
	}
}

// TestPipelineLifecycleCompletes checks the pipelined end-to-end
// contract: with the default depth, every planned epoch still syncs and
// prunes, cross-layer parity holds, and the report carries the pipeline
// telemetry (positive occupancy: commit stages really were in flight
// when later epochs sealed).
func TestPipelineLifecycleCompletes(t *testing.T) {
	sysCfg, drvCfg := multiTestConfigs(21, 16, 4, 4)
	sysCfg.PipelineDepth = 2
	sys, _, err := NewMultiDriver(sysCfg, drvCfg)
	if err != nil {
		t.Fatalf("NewMultiDriver: %v", err)
	}
	rep, err := sys.Run(drvCfg.Epochs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.SyncsOK != rep.EpochsRun {
		t.Errorf("SyncsOK = %d, want %d", rep.SyncsOK, rep.EpochsRun)
	}
	if got := int(sys.LastSyncedEpoch()); got != rep.EpochsRun {
		t.Errorf("bank synced through epoch %d, want %d", got, rep.EpochsRun)
	}
	if err := sys.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if rep.PipelineDepth != 2 {
		t.Errorf("report PipelineDepth = %d, want 2", rep.PipelineDepth)
	}
	if rep.PipelineOccupancy <= 0 {
		t.Errorf("pipeline occupancy = %v, want > 0 (stages should overlap)", rep.PipelineOccupancy)
	}
	if rep.Collector.MaxPipelineOccupancy() < 1 {
		t.Errorf("max pipeline occupancy = %d, want >= 1", rep.Collector.MaxPipelineOccupancy())
	}

	// Depth 1 keeps the window empty by construction.
	sysCfg1, drvCfg1 := multiTestConfigs(21, 16, 4, 4)
	sysCfg1.PipelineDepth = 1
	sys1, _, err := NewMultiDriver(sysCfg1, drvCfg1)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := sys1.Run(drvCfg1.Epochs)
	if err != nil {
		t.Fatalf("depth-1 run: %v", err)
	}
	if rep1.PipelineOccupancy != 0 {
		t.Errorf("depth-1 occupancy = %v, want 0", rep1.PipelineOccupancy)
	}
	if rep1.PipelineStallWall != 0 {
		t.Errorf("depth-1 stall = %v, want 0", rep1.PipelineStallWall)
	}
}

// pipelineFaultOutcome captures everything the fault-drain test compares
// across repeated runs: the surfaced error, the run counters, and every
// receipt's final lifecycle stage grouped by epoch.
type pipelineFaultOutcome struct {
	errText  string
	syncsOK  int
	statuses map[uint64]map[chain.Status]int
}

// runPipelineFault runs a pipelined deployment whose epoch-2 committee
// signs a corrupted digest, submitting a fixed per-epoch traffic stream
// and keeping every receipt. The revert surfaces while at least one
// later epoch is mid-execution, exercising the drain path.
func runPipelineFault(t *testing.T) pipelineFaultOutcome {
	t.Helper()
	const epochs = 4
	sysCfg, _ := multiTestConfigs(99, 8, 4, epochs)
	sysCfg.PipelineDepth = 2
	sysCfg.Faults.CorruptSyncEpochs = map[uint64]bool{2: true}
	wcfg := workload.DefaultMultiConfig(99, 8)
	wcfg.NumUsers = 20
	gen := workload.NewMulti(wcfg)
	sys, err := NewMultiSystem(sysCfg, gen.Users())
	if err != nil {
		t.Fatal(err)
	}
	recs := make(map[uint64][]*chain.Receipt)
	var submitErrs []error
	sys.OnEpochStart = func(epoch uint64) {
		for i := 0; i < 40; i++ {
			rc, err := sys.Submit(context.Background(), gen.Next())
			if err != nil {
				submitErrs = append(submitErrs, err)
				continue
			}
			recs[epoch] = append(recs[epoch], rc)
		}
	}
	rep, err := sys.Run(epochs)
	if err == nil {
		t.Fatal("corrupted epoch-2 sync should surface an error")
	}
	if !errors.Is(err, chain.ErrSyncReverted) {
		t.Fatalf("err = %v, want ErrSyncReverted", err)
	}
	if rep == nil {
		t.Fatal("report should cover the partial run")
	}
	// The node halted: later submissions are refused with ErrHalted.
	if _, err := sys.Submit(context.Background(), gen.Next()); !errors.Is(err, chain.ErrHalted) {
		t.Errorf("post-halt Submit err = %v, want ErrHalted", err)
	}
	for _, err := range submitErrs {
		if !errors.Is(err, chain.ErrHalted) {
			t.Errorf("mid-run submit error %v, want ErrHalted only", err)
		}
	}
	out := pipelineFaultOutcome{
		errText:  fmt.Sprint(err),
		syncsOK:  rep.SyncsOK,
		statuses: make(map[uint64]map[chain.Status]int),
	}
	for epoch, rcs := range recs {
		bucket := make(map[chain.Status]int)
		for _, rc := range rcs {
			bucket[rc.Status]++
		}
		out.statuses[epoch] = bucket
	}
	return out
}

// TestPipelineFaultDrain pins the drain semantics the pipeline must
// preserve: an ErrSyncReverted for epoch 2 raised while epochs 3+ are
// mid-flight halts the node deterministically and leaves receipts in
// consistent stages — epoch 1 fully pruned, epoch 2 checkpointed but
// never synced, later epochs no further than executed.
func TestPipelineFaultDrain(t *testing.T) {
	out := runPipelineFault(t)
	if out.syncsOK != 1 {
		t.Errorf("SyncsOK = %d, want 1 (only epoch 1 synced)", out.syncsOK)
	}
	for st := range out.statuses[1] {
		if st != chain.StatusPruned && st != chain.StatusRejected {
			t.Errorf("epoch 1 receipt in stage %v, want pruned (or rejected)", st)
		}
	}
	seen2 := false
	for st, n := range out.statuses[2] {
		if st == chain.StatusCheckpointed {
			seen2 = n > 0
		}
		if st == chain.StatusSynced || st == chain.StatusPruned {
			t.Errorf("epoch 2 receipt reached %v after its sync reverted", st)
		}
	}
	if !seen2 {
		t.Error("epoch 2 receipts never reached checkpointed (summary published before the revert)")
	}
	for epoch := uint64(3); epoch <= 4; epoch++ {
		for st := range out.statuses[epoch] {
			switch st {
			case chain.StatusPending, chain.StatusExecuted, chain.StatusRejected:
			default:
				t.Errorf("epoch %d receipt in stage %v, want <= executed (its commit stage was drained)", epoch, st)
			}
		}
	}
	// Halting is deterministic: the identical scenario reproduces the
	// same error, counters, and receipt stages.
	again := runPipelineFault(t)
	if again.errText != out.errText {
		t.Errorf("halt error diverged across runs:\n  %s\n  %s", out.errText, again.errText)
	}
	if again.syncsOK != out.syncsOK {
		t.Errorf("SyncsOK diverged: %d vs %d", out.syncsOK, again.syncsOK)
	}
	for epoch, bucket := range out.statuses {
		other := again.statuses[epoch]
		for st, n := range bucket {
			if other[st] != n {
				t.Errorf("epoch %d stage %v count diverged: %d vs %d", epoch, st, n, other[st])
			}
		}
	}
}

// TestPipelineLateSubmissionDrains pins the end-of-run window: a
// transaction submitted after the final planned epoch's last round
// completes, but before the round boundary where the next epoch would
// start, still gets a drain epoch — its receipt must never be stranded
// at Pending (the serial path makes the same decision inside its
// delayed summary callback; the pipelined path defers it to the
// boundary).
func TestPipelineLateSubmissionDrains(t *testing.T) {
	sysCfg, _ := multiTestConfigs(3, 4, 2, 2)
	sysCfg.PipelineDepth = 2
	sysCfg.EpochRounds = 2 // epochs at 0s and 14s; final round starts at 21s
	sys, err := NewMultiSystem(sysCfg, []string{"u-0"})
	if err != nil {
		t.Fatal(err)
	}
	var rc *chain.Receipt
	sys.Sim().At(26*time.Second, func() {
		// After the final round's block mined (~23s), before the 28s
		// boundary.
		tx := &summary.Tx{ID: "late", Kind: gasmodel.KindSwap, User: "u-0",
			PoolID: sys.PoolIDs()[0], ZeroForOne: true, ExactIn: true,
			Amount: u256.FromUint64(1000)}
		var serr error
		rc, serr = sys.Submit(context.Background(), tx)
		if serr != nil {
			t.Errorf("late Submit: %v", serr)
		}
	})
	rep, err := sys.Run(2)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rc == nil {
		t.Fatal("late submission never ran")
	}
	if rc.Status == chain.StatusPending {
		t.Fatalf("late submission stranded at Pending (epoch %d)", rc.Epoch)
	}
	if rep.EpochsRun < 3 {
		t.Errorf("ran %d epochs, want a drain epoch for the late transaction", rep.EpochsRun)
	}
}

// TestPipelineSealedUntouchedPools checks the lazy-snapshot interaction:
// pools untouched in a sealed epoch keep answering their roots from the
// commitment cache while the next epoch runs, and a pool touched only in
// the later epoch still folds correctly.
func TestPipelineSealedUntouchedPools(t *testing.T) {
	sysCfg, _ := multiTestConfigs(5, 8, 2, 3)
	sysCfg.PipelineDepth = 2
	users := []string{"u-0", "u-1"}
	sys, err := NewMultiSystem(sysCfg, users)
	if err != nil {
		t.Fatal(err)
	}
	pools := sys.PoolIDs()
	// Epoch 1 trades only pool 0; epoch 2 only the last pool; epoch 3
	// nothing at all.
	sys.OnEpochStart = func(epoch uint64) {
		var pid string
		switch epoch {
		case 1:
			pid = pools[0]
		case 2:
			pid = pools[len(pools)-1]
		default:
			return
		}
		tx := &summary.Tx{
			ID: fmt.Sprintf("ptx-e%d", epoch), Kind: gasmodel.KindSwap, User: "u-0",
			PoolID: pid, ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(1_000_000),
		}
		if _, err := sys.Submit(context.Background(), tx); err != nil {
			t.Errorf("submit epoch %d: %v", epoch, err)
		}
	}
	rep, err := sys.Run(3)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.SyncsOK != rep.EpochsRun {
		t.Errorf("SyncsOK = %d, want %d", rep.SyncsOK, rep.EpochsRun)
	}
	// (Validate is skipped: a pool that never trades keeps its genesis
	// position out of every sync payload, so the bank never learns it —
	// identical behavior at depth 1; this test only pins pipelining.)
	if len(rep.SummaryRoots) < 3 {
		t.Fatalf("recorded %d summary roots, want >= 3", len(rep.SummaryRoots))
	}
	// Epoch 3 touched nothing: its root must equal epoch 2's (identical
	// state, answered from the commitment caches of sealed pools).
	if rep.SummaryRoots[2] == rep.SummaryRoots[1] {
		t.Error("epoch 2 root should differ from epoch 1 (different pools traded)")
	}
	if rep.SummaryRoots[3] != rep.SummaryRoots[2] {
		t.Error("idle epoch 3 root should equal epoch 2's")
	}
}
