package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/gasmodel"
	"ammboost/internal/store"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

// recoveryUsers is the fixed deployment user set for the restart tests.
func recoveryUsers() []string {
	users := make([]string, 8)
	for i := range users {
		users[i] = fmt.Sprintf("ru-%d", i)
	}
	return users
}

func recoveryCfg(seed int64, pools, shards, depth int) chain.Config {
	return chain.Config{
		Seed:          seed,
		NumPools:      pools,
		NumShards:     shards,
		PipelineDepth: depth,
		EpochRounds:   3,
		RoundDuration: 7 * time.Second,
		CommitteeSize: 10,
		Users:         recoveryUsers(),
	}
}

// attachRecoveryTraffic drives deterministic per-epoch traffic: every
// epoch's transactions are derived from (seed, epoch) alone, so a node
// recovered at any boundary regenerates exactly the stream the
// uninterrupted run saw — the property a recovery-aware driver needs
// (pre-crash traffic that never executed is gone, like any mempool).
func attachRecoveryTraffic(t *testing.T, sys *MultiSystem, seed int64, perEpoch int) {
	t.Helper()
	pools := sys.PoolIDs()
	users := recoveryUsers()
	sys.OnEpochStart = func(epoch uint64) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(epoch)))
		type mintRef struct{ id, user, pool string }
		var minted []mintRef
		for i := 0; i < perEpoch; i++ {
			user := users[rng.Intn(len(users))]
			pid := pools[rng.Intn(len(pools))]
			txID := fmt.Sprintf("rt-e%d-%d", epoch, i)
			var tx *summary.Tx
			switch k := rng.Intn(10); {
			case k < 6 || (k >= 8 && len(minted) == 0):
				tx = &summary.Tx{ID: txID, Kind: gasmodel.KindSwap, User: user, PoolID: pid,
					ZeroForOne: rng.Intn(2) == 0, ExactIn: true,
					Amount: u256.FromUint64(uint64(rng.Intn(500_000) + 1))}
			case k < 8:
				lo := int32(rng.Intn(20)-10) * 60
				tx = &summary.Tx{ID: txID, Kind: gasmodel.KindMint, User: user, PoolID: pid,
					TickLower: lo, TickUpper: lo + 600,
					Amount0Desired: u256.FromUint64(1 << 20), Amount1Desired: u256.FromUint64(1 << 20)}
				minted = append(minted, mintRef{summary.DerivePositionID(txID, user), user, pid})
			default:
				m := minted[rng.Intn(len(minted))]
				tx = &summary.Tx{ID: txID, Kind: gasmodel.KindBurn, User: m.user, PoolID: m.pool,
					PosID: m.id, BurnFractionBps: 5000}
			}
			if _, err := sys.Submit(context.Background(), tx); err != nil && !errors.Is(err, chain.ErrHalted) {
				t.Errorf("submit %s: %v", txID, err)
			}
		}
	}
}

// runPrint is the state fingerprint the restart matrix compares:
// per-epoch summary roots and per-epoch, per-pool payload digests.
type runPrint struct {
	roots   map[uint64][32]byte
	digests map[uint64][][32]byte
}

func fingerprintRun(rep *chain.Report, ms *MultiSystem) runPrint {
	fp := runPrint{roots: rep.SummaryRoots, digests: make(map[uint64][][32]byte)}
	if rec := ms.Recovery(); rec != nil {
		for e, ds := range rec.PayloadDigests {
			fp.digests[e] = ds
		}
	}
	for _, sb := range ms.SidechainLedger().Summaries() {
		fp.digests[sb.Epoch] = append(fp.digests[sb.Epoch], sb.Payload.Digest())
	}
	return fp
}

func comparePrints(t *testing.T, label string, want, got runPrint, epochs int) {
	t.Helper()
	for e := uint64(1); e <= uint64(epochs); e++ {
		if want.roots[e] != got.roots[e] {
			t.Errorf("%s: epoch %d summary root diverged", label, e)
		}
		wd, gd := want.digests[e], got.digests[e]
		if len(wd) != len(gd) {
			t.Errorf("%s: epoch %d has %d payload digests, want %d", label, e, len(gd), len(wd))
			continue
		}
		for i := range wd {
			if wd[i] != gd[i] {
				t.Errorf("%s: epoch %d payload %d digest diverged", label, e, i)
			}
		}
	}
}

// TestKillRestartDeterminism is the PR's acceptance matrix: a node
// killed at an epoch boundary (the store truncated to that boundary,
// exactly what kill -9 after the boundary's fsync leaves) and reopened
// with chain.Open re-derives bit-identical summary roots and payload
// digests for every epoch — restored ones and resumed ones — across
// seeds × shard counts × pipeline depths. It also pins that attaching
// the store perturbs nothing: the store-backed full run matches the
// storeless reference.
func TestKillRestartDeterminism(t *testing.T) {
	const epochs, pools, perEpoch = 4, 8, 24
	for _, seed := range []int64{1, 42, 1337} {
		for _, shards := range []int{1, 4, 16} {
			for _, depth := range []int{1, 2} {
				label := fmt.Sprintf("seed=%d shards=%d depth=%d", seed, shards, depth)
				cfg := recoveryCfg(seed, pools, shards, depth)

				// Storeless reference.
				refSys, err := NewMultiSystem(cfg, cfg.Users)
				if err != nil {
					t.Fatal(err)
				}
				attachRecoveryTraffic(t, refSys, seed, perEpoch)
				refRep, err := refSys.Run(epochs)
				if err != nil {
					t.Fatalf("%s: reference run: %v", label, err)
				}
				ref := fingerprintRun(refRep, refSys)
				if len(ref.roots) != epochs {
					t.Fatalf("%s: reference recorded %d roots", label, len(ref.roots))
				}

				// Store-backed full run: persistence must not perturb.
				dir := t.TempDir()
				node, err := chain.Open(dir, cfg)
				if err != nil {
					t.Fatalf("%s: open: %v", label, err)
				}
				ms := node.(*MultiSystem)
				if ms.Recovery() != nil {
					t.Fatalf("%s: fresh dir reported a recovery", label)
				}
				attachRecoveryTraffic(t, ms, seed, perEpoch)
				rep, err := node.Run(epochs)
				if err != nil {
					t.Fatalf("%s: store-backed run: %v", label, err)
				}
				comparePrints(t, label+" (store-backed)", ref, fingerprintRun(rep, ms), epochs)
				if err := node.Close(); err != nil {
					t.Fatalf("%s: close: %v", label, err)
				}

				// Kill -9 at a seed-derived epoch boundary: truncate the
				// log to that boundary's fsync point.
				rec, w, err := store.Open(store.OSFS{}, dir, Fingerprint(cfg))
				if err != nil {
					t.Fatal(err)
				}
				w.Close()
				if len(rec.Boundaries) != epochs {
					t.Fatalf("%s: %d boundaries persisted, want %d", label, len(rec.Boundaries), epochs)
				}
				kill := 1 + int((seed+int64(3*shards+depth))%(epochs-1)) // 1..epochs-1
				data, err := os.ReadFile(filepath.Join(dir, store.FileName))
				if err != nil {
					t.Fatal(err)
				}
				dir2 := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir2, store.FileName),
					data[:rec.Boundaries[kill-1]], 0o644); err != nil {
					t.Fatal(err)
				}

				node2, err := chain.Open(dir2, cfg)
				if err != nil {
					t.Fatalf("%s: reopen after kill@%d: %v", label, kill, err)
				}
				ms2 := node2.(*MultiSystem)
				if got := ms2.Recovery(); got == nil || got.Epoch != uint64(kill) {
					t.Fatalf("%s: recovered %+v, want boundary %d", label, got, kill)
				}
				attachRecoveryTraffic(t, ms2, seed, perEpoch)
				rep2, err := node2.Run(epochs)
				if err != nil {
					t.Fatalf("%s: resumed run: %v", label, err)
				}
				if rep2.EpochsRun != epochs {
					t.Errorf("%s: resumed run covered %d epochs", label, rep2.EpochsRun)
				}
				if rep2.SyncsOK != refRep.SyncsOK {
					t.Errorf("%s: resumed SyncsOK = %d, reference %d (replayed confirmations must count)",
						label, rep2.SyncsOK, refRep.SyncsOK)
				}
				comparePrints(t, fmt.Sprintf("%s kill@%d", label, kill), ref,
					fingerprintRun(rep2, ms2), epochs)
				if err := node2.Validate(); err != nil {
					t.Errorf("%s: resumed Validate: %v", label, err)
				}
				if err := node2.Close(); err != nil {
					t.Errorf("%s: resumed close: %v", label, err)
				}
			}
		}
	}
}

// TestCrashOffsetSweep kills the store at arbitrary byte offsets — not
// just boundaries — through the FaultFS crash harness: whatever survives
// on "disk", recovery must come back at some earlier boundary and the
// resumed run must still re-derive the reference fingerprint. This is
// the torn-final-record acceptance: roll back, never panic, never
// silently diverge.
func TestCrashOffsetSweep(t *testing.T) {
	const seed, epochs, pools, perEpoch = 11, 3, 4, 16
	cfg := recoveryCfg(seed, pools, 2, 2)

	refSys, err := NewMultiSystem(cfg, cfg.Users)
	if err != nil {
		t.Fatal(err)
	}
	attachRecoveryTraffic(t, refSys, seed, perEpoch)
	refRep, err := refSys.Run(epochs)
	if err != nil {
		t.Fatal(err)
	}
	ref := fingerprintRun(refRep, refSys)

	// Clean store-backed run to learn the file geometry.
	clean := &store.MemFS{}
	node, err := OpenFS(clean, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms := node.(*MultiSystem)
	attachRecoveryTraffic(t, ms, seed, perEpoch)
	if _, err := node.Run(epochs); err != nil {
		t.Fatal(err)
	}
	node.Close()
	rec, w, err := store.Open(clean, "", Fingerprint(cfg))
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	offsets := []int64{rec.HeaderEnd, rec.HeaderEnd + 1}
	for _, b := range rec.Boundaries {
		offsets = append(offsets, b-1, b, b+1, b+57)
	}
	for _, crash := range offsets {
		inner := &store.MemFS{}
		ffs := store.NewFaultFS(inner)
		ffs.CrashAfter = crash
		crashed, err := OpenFS(ffs, "", cfg)
		if err != nil {
			t.Fatalf("crash=%d open: %v", crash, err)
		}
		cms := crashed.(*MultiSystem)
		attachRecoveryTraffic(t, cms, seed, perEpoch)
		if _, err := crashed.Run(epochs); err != nil {
			t.Fatalf("crash=%d run: %v", crash, err)
		}
		crashed.Close()

		// Reboot on what survived.
		reopened, err := OpenFS(inner, "", cfg)
		if err != nil {
			t.Fatalf("crash=%d reopen: %v", crash, err)
		}
		rms := reopened.(*MultiSystem)
		boundary := uint64(0)
		for i, b := range rec.Boundaries {
			if b <= crash {
				boundary = uint64(i + 1)
			}
		}
		if got := rms.Epoch(); got != boundary {
			t.Fatalf("crash=%d: recovered epoch %d, want %d", crash, got, boundary)
		}
		attachRecoveryTraffic(t, rms, seed, perEpoch)
		rep, err := reopened.Run(epochs)
		if err != nil {
			t.Fatalf("crash=%d resumed run: %v", crash, err)
		}
		comparePrints(t, fmt.Sprintf("crash=%d", crash), ref, fingerprintRun(rep, rms), epochs)
		reopened.Close()
	}
}

// TestOpenEdgeCases covers the chain.Open contract around the happy
// path: fresh directories, config mismatches, unsupported backends, and
// resuming a deployment that already finished its planned epochs.
func TestOpenEdgeCases(t *testing.T) {
	cfg := recoveryCfg(5, 4, 2, 2)

	t.Run("empty dir is a fresh node", func(t *testing.T) {
		dir := t.TempDir()
		node, err := chain.Open(filepath.Join(dir, "data"), cfg) // not yet created
		if err != nil {
			t.Fatal(err)
		}
		ms := node.(*MultiSystem)
		if ms.Recovery() != nil {
			t.Error("fresh node claims a recovery")
		}
		attachRecoveryTraffic(t, ms, 5, 8)
		if _, err := node.Run(1); err != nil {
			t.Fatal(err)
		}
		node.Close()
	})

	t.Run("fingerprint mismatch", func(t *testing.T) {
		dir := t.TempDir()
		node, err := chain.Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.Close()
		other := cfg
		other.Seed = 999
		if _, err := chain.Open(dir, other); !errors.Is(err, chain.ErrStoreMismatch) {
			t.Errorf("seed change: err = %v, want ErrStoreMismatch", err)
		}
		users := cfg
		users.Users = append([]string{"intruder"}, cfg.Users...)
		if _, err := chain.Open(dir, users); !errors.Is(err, chain.ErrStoreMismatch) {
			t.Errorf("user change: err = %v, want ErrStoreMismatch", err)
		}
		// Shard count and pipeline depth are state-invariant: no mismatch.
		reshard := cfg
		reshard.NumShards = 16
		reshard.PipelineDepth = 1
		node2, err := chain.Open(dir, reshard)
		if err != nil {
			t.Errorf("reshard reopen: %v", err)
		} else {
			node2.Close()
		}
	})

	t.Run("single-pool backend unsupported", func(t *testing.T) {
		single := chain.Config{Seed: 1}
		if _, err := chain.Open(t.TempDir(), single); !errors.Is(err, chain.ErrStoreUnsupported) {
			t.Errorf("err = %v, want ErrStoreUnsupported", err)
		}
	})

	t.Run("resume past planned epochs", func(t *testing.T) {
		dir := t.TempDir()
		node, err := chain.Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms := node.(*MultiSystem)
		attachRecoveryTraffic(t, ms, 5, 8)
		rep, err := node.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		node.Close()

		node2, err := chain.Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms2 := node2.(*MultiSystem)
		if got := ms2.Recovery().Epoch; got != 2 {
			t.Fatalf("recovered epoch %d, want 2", got)
		}
		rep2, err := node2.Run(2) // already done: nothing to execute
		if err != nil {
			t.Fatalf("no-op resume: %v", err)
		}
		if rep2.EpochsRun != rep.EpochsRun {
			t.Errorf("no-op resume ran %d epochs, want %d", rep2.EpochsRun, rep.EpochsRun)
		}
		for e, root := range rep.SummaryRoots {
			if rep2.SummaryRoots[e] != root {
				t.Errorf("epoch %d root not restored", e)
			}
		}
		if err := node2.Validate(); err != nil {
			t.Errorf("restored Validate: %v", err)
		}
		node2.Close()
	})
}

// TestRecoverHaltedStaysHalted pins the armed-faults edge case: a node
// that halted on a lifecycle fault (corrupt epoch-2 sync) persists the
// halt, and reopening it — with the same FaultPlan still armed — yields
// a node that is halted on arrival: submissions refused, Run returns the
// persisted fault, no epoch re-executes.
func TestRecoverHaltedStaysHalted(t *testing.T) {
	cfg := recoveryCfg(13, 4, 2, 2)
	cfg.Faults.CorruptSyncEpochs = map[uint64]bool{2: true}
	dir := t.TempDir()
	node, err := chain.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms := node.(*MultiSystem)
	attachRecoveryTraffic(t, ms, 13, 8)
	if _, err := node.Run(4); !errors.Is(err, chain.ErrSyncReverted) {
		t.Fatalf("faulted run err = %v, want ErrSyncReverted", err)
	}
	node.Close()

	node2, err := chain.Open(dir, cfg)
	if err != nil {
		t.Fatalf("reopen halted store: %v", err)
	}
	ms2 := node2.(*MultiSystem)
	rec := ms2.Recovery()
	if rec == nil || !rec.Halted || rec.HaltReason == "" {
		t.Fatalf("recovery = %+v, want halted with reason", rec)
	}
	if _, err := ms2.Submit(context.Background(), &summary.Tx{ID: "post", Kind: gasmodel.KindSwap, User: "ru-0",
		Amount: u256.FromUint64(1)}); !errors.Is(err, chain.ErrHalted) {
		t.Errorf("submit on recovered-halted node: %v, want ErrHalted", err)
	}
	rep, err := node2.Run(4)
	if !errors.Is(err, chain.ErrHalted) {
		t.Errorf("run on recovered-halted node: %v, want ErrHalted", err)
	}
	if rep.EpochsRun != int(rec.Epoch) {
		t.Errorf("halted resume ran epochs: %d, want %d", rep.EpochsRun, rec.Epoch)
	}
	node2.Close()
}

// TestRecoveredReceiptTable pins the receipt-table round trip: receipts
// persisted at checkpoint come back with their identity, stages, and
// virtual timestamps, upgraded to Pruned for epochs the replayed
// sync-part log confirmed.
func TestRecoveredReceiptTable(t *testing.T) {
	cfg := recoveryCfg(17, 4, 2, 1)
	dir := t.TempDir()
	node, err := chain.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms := node.(*MultiSystem)
	attachRecoveryTraffic(t, ms, 17, 12)
	if _, err := node.Run(2); err != nil {
		t.Fatal(err)
	}
	node.Close()

	node2, err := chain.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := node2.(*MultiSystem).Recovery()
	if rec == nil || len(rec.Receipts) == 0 {
		t.Fatal("no receipts recovered")
	}
	for _, rc := range rec.Receipts {
		if rc.TxID == "" || rc.Epoch == 0 {
			t.Errorf("receipt missing identity: %+v", rc)
		}
		switch rc.Status {
		case chain.StatusPruned, chain.StatusRejected:
		default:
			t.Errorf("receipt %s recovered at %v, want pruned (sync log replayed) or rejected",
				rc.TxID, rc.Status)
		}
		if rc.Status == chain.StatusPruned && (rc.ExecutedAt == 0 || rc.CheckpointedAt == 0) {
			t.Errorf("receipt %s lost its timestamps: %+v", rc.TxID, rc)
		}
	}
	node2.Close()
}

// TestStoreLockSingleWriter pins the single-writer contract: a second
// Open on a live data directory fails with ErrStoreLocked instead of
// interleaving records, and the lock dies with the holder (Close), so a
// crashed node's store reopens freely.
func TestStoreLockSingleWriter(t *testing.T) {
	cfg := recoveryCfg(29, 4, 2, 1)
	dir := t.TempDir()
	node, err := chain.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Open(dir, cfg); !errors.Is(err, chain.ErrStoreLocked) {
		t.Errorf("second open err = %v, want ErrStoreLocked", err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	node2, err := chain.Open(dir, cfg)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	node2.Close()
}
