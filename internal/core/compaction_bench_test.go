package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/gasmodel"
	"ammboost/internal/store"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

// openBenchCfg is deliberately tiny per epoch: BenchmarkOpen measures
// how RESTART cost scales with history length, so everything except the
// per-epoch record count is minimized — 2 pools, 1 shard, 1 round, a
// 4-member committee, one transaction per epoch, and an 8-epoch
// retention window (a long-running node always bounds its tables).
func openBenchCfg(compactEvery int) chain.Config {
	return chain.Config{
		Seed:          42,
		NumPools:      2,
		NumShards:     1,
		EpochRounds:   1,
		RoundDuration: time.Second,
		CommitteeSize: 4,
		PipelineDepth: 1,
		RetainEpochs:  8,
		CompactEvery:  compactEvery,
		Users:         []string{"ob-0", "ob-1"},
	}
}

func attachOpenBenchTraffic(sys *MultiSystem) {
	pools := sys.PoolIDs()
	sys.OnEpochStart = func(epoch uint64) {
		tx := &summary.Tx{
			ID: fmt.Sprintf("ob-e%d", epoch), Kind: gasmodel.KindSwap,
			User: "ob-0", PoolID: pools[int(epoch)%len(pools)],
			ZeroForOne: epoch%2 == 0, ExactIn: true,
			Amount: u256.FromUint64(1000),
		}
		sys.Submit(context.Background(), tx)
	}
}

// openBenchStores caches the generated history images: building the
// 10k-epoch log once per (history, cadence) cell is the expensive part,
// and every iteration only needs a byte copy of it.
var openBenchStores = map[string][]byte{}

func openBenchStore(b *testing.B, hist, compactEvery int) []byte {
	b.Helper()
	key := fmt.Sprintf("%d/%d", hist, compactEvery)
	if data, ok := openBenchStores[key]; ok {
		return data
	}
	fsys := &store.MemFS{}
	node, err := OpenFS(fsys, "", openBenchCfg(compactEvery))
	if err != nil {
		b.Fatal(err)
	}
	attachOpenBenchTraffic(node.(*MultiSystem))
	if _, err := node.Run(hist); err != nil {
		b.Fatal(err)
	}
	if err := node.Close(); err != nil {
		b.Fatal(err)
	}
	data, err := fsys.ReadFile(store.FileName)
	if err != nil {
		b.Fatal(err)
	}
	openBenchStores[key] = data
	return data
}

func plantStore(b *testing.B, data []byte) *store.MemFS {
	b.Helper()
	fsys := &store.MemFS{}
	f, err := fsys.OpenAppend(store.FileName, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		b.Fatal(err)
	}
	f.Close()
	return fsys
}

// BenchmarkOpen measures restart latency against history length: one op
// is a full chain open — scan, checkpoint anchor, pool-root
// re-derivation, tail sync-part replay — on a {100, 10k}-epoch history,
// with compaction off (the whole history is tail records to replay) and
// on (a 64-epoch cadence keeps the replayed tail bounded, so cost should
// flatline). scripts/bench.sh derives open_10k_vs_100_ratio from the
// compact=on cells and bench_check.sh gates it at <= 2.0 — the
// restart-at-scale acceptance: opening 100x the history may cost at most
// 2x the time.
func BenchmarkOpen(b *testing.B) {
	for _, hist := range []int{100, 10_000} {
		for _, cell := range []struct {
			name  string
			every int
		}{{"compact=off", 0}, {"compact=on", 64}} {
			b.Run(fmt.Sprintf("hist=%d/%s", hist, cell.name), func(b *testing.B) {
				data := openBenchStore(b, hist, cell.every)
				cfg := openBenchCfg(cell.every)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fsys := plantStore(b, data)
					b.StartTimer()
					node, err := OpenFS(fsys, "", cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if got := node.(*MultiSystem).Epoch(); got != uint64(hist) {
						b.Fatalf("recovered at epoch %d, want %d", got, hist)
					}
					node.Close()
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkCompact measures one log rewrite: scanning a 10k-epoch
// uncompacted history, folding it into a checkpoint (8-epoch retained
// root table, full pool snapshots, bank replay cursor), and the
// write-temp-fsync-rename swap. The bank state is encoded once from a
// real restart — compaction itself never touches the live node.
func BenchmarkCompact(b *testing.B) {
	const hist = 10_000
	data := openBenchStore(b, hist, 0)
	cfg := openBenchCfg(0)

	node, err := OpenFS(plantStore(b, data), "", cfg)
	if err != nil {
		b.Fatal(err)
	}
	bank := node.(*MultiSystem).bank.EncodeState()
	node.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fsys := plantStore(b, data)
		_, w, err := store.Open(fsys, "", Fingerprint(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := w.Compact(hist, hist-8, bank); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		w.Close()
		b.StartTimer()
	}
}
