package core

import (
	"math/rand"
	"testing"
	"time"

	"ammboost/internal/amm"
	"ammboost/internal/crypto/tsig"
	"ammboost/internal/gasmodel"
	"ammboost/internal/netsim"
	"ammboost/internal/sidechain"
	"ammboost/internal/sim"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

func liveFixture(t *testing.T, seed int64) (*sim.Simulator, *netsim.Network, *summary.Executor, *sidechain.Ledger) {
	t.Helper()
	s := sim.New()
	net := netsim.New(s, netsim.Config{BaseLatency: 2 * time.Millisecond, BandwidthBps: 1e9})
	pool, err := amm.NewPool("A", "B", 3000, 60, u256.Q96)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Mint("seed", "lp0", -12000, 12000, u256.FromUint64(50_000_000_000)); err != nil {
		t.Fatal(err)
	}
	exec := summary.NewExecutor(1, pool, map[string]summary.Deposit{
		"alice": {Amount0: u256.FromUint64(10_000_000), Amount1: u256.FromUint64(10_000_000)},
		"bob":   {Amount0: u256.FromUint64(10_000_000), Amount1: u256.FromUint64(10_000_000)},
	})
	ledger := sidechain.NewLedger([32]byte{0xaa})
	return s, net, exec, ledger
}

func liveTxs(n int) []*summary.Tx {
	txs := make([]*summary.Tx, n)
	for i := range txs {
		user := "alice"
		if i%2 == 0 {
			user = "bob"
		}
		txs[i] = &summary.Tx{
			ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Kind: gasmodel.KindSwap,
			User: user, ZeroForOne: i%2 == 0, ExactIn: true,
			Amount: u256.FromUint64(uint64(1000 + i)),
		}
	}
	return txs
}

func TestLiveCommitteeEpoch(t *testing.T) {
	s, net, exec, ledger := liveFixture(t, 1)
	cfg := LiveCommitteeConfig{F: 1, Epoch: 1, Rounds: 3, RoundDur: time.Second, BlockBytes: 1 << 20}
	lc, err := NewLiveCommittee(s, net, rand.New(rand.NewSource(1)), cfg, exec, ledger)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range liveTxs(12) {
		lc.SubmitTx(tx)
	}
	if err := lc.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(lc.Blocks) != 3 {
		t.Fatalf("mined %d meta-blocks, want 3", len(lc.Blocks))
	}
	if lc.Summary == nil || lc.Payload() == nil {
		t.Fatal("no summary block")
	}
	// The TSQC signature over the payload verifies under the committee
	// key — exactly what TokenBank checks.
	digest := lc.Payload().Digest()
	if err := tsig.Verify(lc.GroupKey, digest[:], lc.SyncSig); err != nil {
		t.Errorf("sync signature invalid: %v", err)
	}
	// All transactions were processed into blocks.
	total := 0
	for _, b := range lc.Blocks {
		total += len(b.Txs)
	}
	if total != 12 {
		t.Errorf("blocks carry %d txs, want 12", total)
	}
	if lc.ViewChanges != 0 {
		t.Errorf("unexpected view changes: %d", lc.ViewChanges)
	}
}

func TestLiveCommitteeViewChangeRecovers(t *testing.T) {
	s, net, exec, ledger := liveFixture(t, 2)
	cfg := LiveCommitteeConfig{F: 1, Epoch: 1, Rounds: 2, RoundDur: time.Second,
		BlockBytes: 1 << 20, SilentLeaderRound: 1}
	lc, err := NewLiveCommittee(s, net, rand.New(rand.NewSource(2)), cfg, exec, ledger)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range liveTxs(6) {
		lc.SubmitTx(tx)
	}
	if err := lc.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if lc.ViewChanges == 0 {
		t.Error("silent leader should force a view change")
	}
	if len(lc.Blocks) != 2 {
		t.Errorf("mined %d blocks despite fault, want 2", len(lc.Blocks))
	}
	digest := lc.Payload().Digest()
	if err := tsig.Verify(lc.GroupKey, digest[:], lc.SyncSig); err != nil {
		t.Errorf("sync signature invalid after recovery: %v", err)
	}
}

// TestLiveMatchesModelPath runs the same transactions through the live
// message-level committee and through the cost-model executor path used by
// experiments: the resulting summaries must be identical — the model is a
// timing shortcut, never a semantic one.
func TestLiveMatchesModelPath(t *testing.T) {
	mkExec := func() *summary.Executor {
		pool, err := amm.NewPool("A", "B", 3000, 60, u256.Q96)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pool.Mint("seed", "lp0", -12000, 12000, u256.FromUint64(50_000_000_000)); err != nil {
			t.Fatal(err)
		}
		return summary.NewExecutor(1, pool, map[string]summary.Deposit{
			"alice": {Amount0: u256.FromUint64(10_000_000), Amount1: u256.FromUint64(10_000_000)},
			"bob":   {Amount0: u256.FromUint64(10_000_000), Amount1: u256.FromUint64(10_000_000)},
		})
	}

	// Live path.
	s := sim.New()
	net := netsim.New(s, netsim.Config{BaseLatency: time.Millisecond, BandwidthBps: 1e9})
	execLive := mkExec()
	ledger := sidechain.NewLedger([32]byte{})
	cfg := LiveCommitteeConfig{F: 1, Epoch: 1, Rounds: 2, RoundDur: time.Second, BlockBytes: 1 << 20}
	lc, err := NewLiveCommittee(s, net, rand.New(rand.NewSource(3)), cfg, execLive, ledger)
	if err != nil {
		t.Fatal(err)
	}
	txsA := liveTxs(10)
	for _, tx := range txsA {
		lc.SubmitTx(tx)
	}
	if err := lc.Run(cfg); err != nil {
		t.Fatal(err)
	}

	// Model path: apply the same transactions directly (blocks of the
	// same capacity in the same order).
	execModel := mkExec()
	txsB := liveTxs(10)
	for _, tx := range txsB {
		if err := execModel.Apply(tx, 1); err != nil {
			t.Fatal(err)
		}
	}
	modelPayload := execModel.Summary(lc.GroupKey.PK.Bytes())

	livePayload := lc.Payload()
	if livePayload.Digest() != modelPayload.Digest() {
		t.Error("live committee and model path produced different summaries")
	}
}
