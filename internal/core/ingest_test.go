package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/summary"
	"ammboost/internal/workload"
)

// ingestMatrixConfig builds the deployment the invariant-13 matrix runs
// on: 8 pools, the given shard count and pipeline depth, short epochs so
// several drain boundaries land inside every epoch.
func ingestMatrixConfig(seed int64, shards, depth int) chain.Config {
	return chain.Config{
		Seed:          seed,
		NumPools:      8,
		NumShards:     shards,
		EpochRounds:   5,
		RoundDuration: 7 * time.Second,
		CommitteeSize: 10,
		PipelineDepth: depth,
	}
}

// receiptFP freezes a receipt's externally observable lifecycle after
// the run: final stage, execution slot, every per-stage virtual
// timestamp, and the rejection reason. Two runs agree on invariant 13
// only if these match per transaction ID.
type receiptFP struct {
	status                                            chain.Status
	epoch, round                                      uint64
	submitted, executed, checkpointed, synced, pruned time.Duration
	errText                                           string
}

func fingerprintReceipt(rc *chain.Receipt) receiptFP {
	fp := receiptFP{
		status: rc.Status, epoch: rc.Epoch, round: rc.Round,
		submitted: rc.SubmittedAt, executed: rc.ExecutedAt,
		checkpointed: rc.CheckpointedAt, synced: rc.SyncedAt, pruned: rc.PrunedAt,
	}
	if rc.Err != nil {
		fp.errText = rc.Err.Error()
	}
	return fp
}

// ingestRunResult is everything the determinism comparison pins between
// an N-producer run and its single-producer replay.
type ingestRunResult struct {
	epochs   int
	roots    map[uint64][32]byte
	payloads map[uint64][][32]byte
	receipts map[string]receiptFP
}

func captureIngestRun(sys *MultiSystem, rep *chain.Report, receipts map[string]*chain.Receipt) ingestRunResult {
	res := ingestRunResult{
		epochs:   rep.EpochsRun,
		roots:    rep.SummaryRoots,
		payloads: make(map[uint64][][32]byte),
		receipts: make(map[string]receiptFP, len(receipts)),
	}
	for _, sb := range sys.SidechainLedger().Summaries() {
		res.payloads[sb.Epoch] = append(res.payloads[sb.Epoch], sb.Payload.Digest())
	}
	for id, rc := range receipts {
		res.receipts[id] = fingerprintReceipt(rc)
	}
	return res
}

// runConcurrentIngest drives one cell of the matrix: `producers`
// goroutines hammer SubmitBatch while the epoch lifecycle runs on this
// goroutine, every accepted receipt is kept, and the node records its
// canonical arrival log. Submissions refused because the node already
// closed after its final epoch are fine — they are in neither the log
// nor the receipt set, so the replay comparison is unaffected.
func runConcurrentIngest(t *testing.T, seed int64, shards, depth, producers, perProducer int) (ingestRunResult, *chain.ArrivalLog) {
	t.Helper()
	cfg := ingestMatrixConfig(seed, shards, depth)
	log := chain.NewArrivalLog()
	cfg.ArrivalLog = log
	wcfg := workload.DefaultMultiConfig(seed, cfg.NumPools)
	wcfg.NumUsers = 30
	// One extra generator beyond the producer goroutines feeds the
	// late-arrival dump below without sharing RNG state with producer 0.
	gens := workload.Producers(wcfg, producers+1)
	sys, err := NewMultiSystem(cfg, gens[0].Users())
	if err != nil {
		t.Fatalf("NewMultiSystem: %v", err)
	}

	var mu sync.Mutex
	receipts := make(map[string]*chain.Receipt)
	// Producers pace themselves on round ticks so every cell of the
	// matrix sees genuine mid-run arrivals racing the drain boundary
	// (not just a pre-filled mempool). The channel is closed after Run
	// returns, releasing any producer still waiting — its remaining
	// submissions then meet the closed node and stop.
	rounds := make(chan struct{}, 1024)
	dumped := false
	sys.OnRoundStart = func(epoch, round uint64) {
		// At the last planned round, schedule a batch at the CURRENT
		// virtual time: the event runs right after this round's drain
		// and before the end-of-run decision, so the decision always
		// finds pending traffic and must schedule drain epochs — the
		// continuation branch the replay has to reproduce.
		if !dumped && epoch == 2 && round == uint64(cfg.EpochRounds) {
			dumped = true
			sys.Sim().At(sys.Sim().Now(), func() {
				txs := make([]*summary.Tx, 48)
				for i := range txs {
					txs[i] = gens[producers].Next()
				}
				res, batchErr := sys.SubmitBatch(context.Background(), txs)
				if batchErr != nil {
					t.Errorf("late dump: batch error %v", batchErr)
					return
				}
				mu.Lock()
				for i, rc := range res.Receipts {
					if res.Errs[i] != nil {
						t.Errorf("late dump: tx error %v", res.Errs[i])
						continue
					}
					receipts[rc.TxID] = rc
				}
				mu.Unlock()
			})
		}
		select {
		case rounds <- struct{}{}:
		default:
		}
		// Give a woken producer wall-clock room to actually reach the
		// mempool: small single-shard runs otherwise burn through every
		// round before the scheduler runs any producer goroutine.
		time.Sleep(100 * time.Microsecond)
	}
	var wg, primed sync.WaitGroup
	primed.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			first := true
			defer func() {
				if first {
					primed.Done()
				}
			}()
			gen := gens[p]
			for sent := 0; sent < perProducer; {
				sz := 32
				if perProducer-sent < sz {
					sz = perProducer - sent
				}
				txs := make([]*summary.Tx, sz)
				for i := range txs {
					txs[i] = gen.Next()
				}
				sent += sz
				res, batchErr := sys.SubmitBatch(context.Background(), txs)
				if batchErr != nil {
					if errors.Is(batchErr, chain.ErrClosed) {
						return
					}
					t.Errorf("producer %d: batch error %v", p, batchErr)
					return
				}
				mu.Lock()
				for i, rc := range res.Receipts {
					if res.Errs[i] == nil {
						receipts[rc.TxID] = rc
					} else if !errors.Is(res.Errs[i], chain.ErrClosed) {
						t.Errorf("producer %d: tx error %v", p, res.Errs[i])
					}
				}
				mu.Unlock()
				if first {
					// The lifecycle only starts once every producer has
					// traffic in the mempool, so the run never closes
					// before the contention it is supposed to absorb.
					first = false
					primed.Done()
				} else {
					// Wait for a round tick so arrivals spread across
					// boundaries, but keep flowing on a timeout — traffic
					// outlasting the planned epochs forces the end-of-run
					// decision to schedule drain epochs, the branch replay
					// must reproduce.
					select {
					case <-rounds:
					case <-time.After(300 * time.Microsecond):
					}
				}
			}
		}(p)
	}
	primed.Wait()
	rep, err := sys.Run(2)
	close(rounds)
	wg.Wait()
	if err != nil {
		t.Fatalf("concurrent run(seed=%d shards=%d depth=%d): %v", seed, shards, depth, err)
	}
	if log.Total() != len(receipts) {
		t.Fatalf("arrival log holds %d txs, producers hold %d accepted receipts", log.Total(), len(receipts))
	}
	return captureIngestRun(sys, rep, receipts), log
}

// runReplayIngest replays an arrival log through a fresh single-producer
// node of the same configuration. Boundary k's transactions must sit in
// the mempool after round k-1 retires and before round k's drain, so the
// end-of-epoch continuation decision sees exactly what the concurrent
// run's decision saw: boundary 0 is pre-scheduled at virtual zero (FIFO
// ordering runs it before the first round), and the OnRoundStart hook
// for round k schedules boundary k+1 at the current virtual time — the
// injection fires right after the round's event returns, ahead of any
// later decision or drain.
func runReplayIngest(t *testing.T, seed int64, shards, depth int, log *chain.ArrivalLog) (ingestRunResult, *chain.ArrivalLog) {
	t.Helper()
	cfg := ingestMatrixConfig(seed, shards, depth)
	replayLog := chain.NewArrivalLog()
	cfg.ArrivalLog = replayLog
	wcfg := workload.DefaultMultiConfig(seed, cfg.NumPools)
	wcfg.NumUsers = 30
	users := workload.NewMulti(wcfg).Users()
	sys, err := NewMultiSystem(cfg, users)
	if err != nil {
		t.Fatalf("NewMultiSystem(replay): %v", err)
	}

	receipts := make(map[string]*chain.Receipt)
	inject := func(txs []*summary.Tx) {
		for _, tx := range txs {
			rc, err := sys.Submit(context.Background(), tx)
			if err != nil {
				t.Errorf("replay submit %s: %v", tx.ID, err)
				continue
			}
			receipts[rc.TxID] = rc
		}
	}
	if txs := log.Txs(0); len(txs) > 0 {
		sys.Sim().At(0, func() { inject(txs) })
	}
	boundary := 0
	sys.OnRoundStart = func(epoch, round uint64) {
		k := boundary + 1
		boundary = k
		if txs := log.Txs(k); len(txs) > 0 {
			sys.Sim().At(sys.Sim().Now(), func() { inject(txs) })
		}
	}
	rep, err := sys.Run(2)
	if err != nil {
		t.Fatalf("replay run(seed=%d shards=%d depth=%d): %v", seed, shards, depth, err)
	}
	return captureIngestRun(sys, rep, receipts), replayLog
}

// compareIngestRuns asserts bit-identical run outcomes: epoch count,
// per-epoch summary roots, sync payload digests, and every receipt's
// stage sequence.
func compareIngestRuns(t *testing.T, label string, base, got ingestRunResult) {
	t.Helper()
	if got.epochs != base.epochs {
		t.Errorf("%s: ran %d epochs, want %d", label, got.epochs, base.epochs)
	}
	if len(got.roots) != len(base.roots) {
		t.Errorf("%s: %d summary roots, want %d", label, len(got.roots), len(base.roots))
	}
	for e, root := range base.roots {
		if got.roots[e] != root {
			t.Errorf("%s: epoch %d summary root diverged", label, e)
		}
	}
	for e, digests := range base.payloads {
		other := got.payloads[e]
		if len(other) != len(digests) {
			t.Errorf("%s: epoch %d has %d payloads, want %d", label, e, len(other), len(digests))
			continue
		}
		for i, d := range digests {
			if other[i] != d {
				t.Errorf("%s: epoch %d payload %d digest diverged", label, e, i)
			}
		}
	}
	if len(got.receipts) != len(base.receipts) {
		t.Errorf("%s: %d receipts, want %d", label, len(got.receipts), len(base.receipts))
	}
	diverged := 0
	for id, fp := range base.receipts {
		other, ok := got.receipts[id]
		if !ok {
			t.Errorf("%s: receipt %s missing from replay", label, id)
			continue
		}
		if other != fp {
			if diverged < 3 {
				t.Errorf("%s: receipt %s diverged: %+v vs %+v", label, id, other, fp)
			}
			diverged++
		}
	}
	if diverged > 3 {
		t.Errorf("%s: %d receipts diverged in total", label, diverged)
	}
}

// TestConcurrentIngestReplayDeterminism pins invariant 13 across the
// acceptance matrix: a 4-producer concurrent run and a single-producer
// replay of its arrival log produce bit-identical epoch summary roots,
// sync payload digests, and receipt stage sequences, for seeds
// {1, 42, 1337} × shard counts {1, 4, 16} × pipeline depths {1, 2}.
// The replay's own arrival log must also reproduce the original
// boundary for boundary — same drain times, same canonical order.
func TestConcurrentIngestReplayDeterminism(t *testing.T) {
	seeds := []int64{1, 42, 1337}
	shardCounts := []int{1, 4, 16}
	depths := []int{1, 2}
	if testing.Short() {
		seeds = []int64{42}
		shardCounts = []int{4}
	}
	for _, seed := range seeds {
		for _, shards := range shardCounts {
			for _, depth := range depths {
				label := fmt.Sprintf("seed=%d shards=%d depth=%d", seed, shards, depth)
				base, log := runConcurrentIngest(t, seed, shards, depth, 4, 250)
				if log.Total() == 0 {
					t.Fatalf("%s: concurrent run admitted nothing", label)
				}
				busy := 0
				for k := 0; k < log.Boundaries(); k++ {
					if len(log.Txs(k)) > 0 {
						busy++
					}
				}
				t.Logf("%s: %d txs across %d of %d boundaries, %d epochs",
					label, log.Total(), busy, log.Boundaries(), base.epochs)
				got, replayLog := runReplayIngest(t, seed, shards, depth, log)
				compareIngestRuns(t, label, base, got)
				if replayLog.Boundaries() != log.Boundaries() {
					t.Errorf("%s: replay recorded %d boundaries, want %d",
						label, replayLog.Boundaries(), log.Boundaries())
					continue
				}
				for k := 0; k < log.Boundaries(); k++ {
					if replayLog.At(k) != log.At(k) {
						t.Errorf("%s: boundary %d drained at %v, want %v",
							label, k, replayLog.At(k), log.At(k))
					}
					want, gotTxs := log.Txs(k), replayLog.Txs(k)
					if len(gotTxs) != len(want) {
						t.Errorf("%s: boundary %d has %d txs, want %d",
							label, k, len(gotTxs), len(want))
						continue
					}
					for i := range want {
						if gotTxs[i].ID != want[i].ID {
							t.Errorf("%s: boundary %d position %d is %s, want %s",
								label, k, i, gotTxs[i].ID, want[i].ID)
							break
						}
					}
				}
			}
		}
	}
}

// TestIngestSaturationTypedRejections pins admission control under
// producer overload: with a tiny mempool and blocking disabled, eight
// producers spamming SubmitBatch against a running node see ONLY typed
// outcomes — a receipt, ErrMempoolFull, or ErrClosed — never a drop, a
// panic, or an untyped error; every ErrMempoolFull carries a retry hint
// and the occupancy snapshot; and the node's report reconciles exactly
// with the client-side counts.
func TestIngestSaturationTypedRejections(t *testing.T) {
	cfg := ingestMatrixConfig(7, 4, 2)
	cfg.IngestCapacity = 256
	cfg.IngestMaxWait = -1 // reject immediately at the wall, never block
	wcfg := workload.DefaultMultiConfig(7, cfg.NumPools)
	wcfg.NumUsers = 30
	const producers = 8
	gens := workload.Producers(wcfg, producers)
	sys, err := NewMultiSystem(cfg, gens[0].Users())
	if err != nil {
		t.Fatalf("NewMultiSystem: %v", err)
	}

	var accepted, rejFull, closed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := gens[p]
			for sent := 0; sent < 2000; sent += 25 {
				txs := make([]*summary.Tx, 25)
				for i := range txs {
					txs[i] = gen.Next()
				}
				res, batchErr := sys.SubmitBatch(context.Background(), txs)
				if batchErr != nil {
					if errors.Is(batchErr, chain.ErrClosed) {
						// The node is done taking traffic: this batch was
						// refused whole, and the producer abandons the rest
						// of its quota — all of it accounted as closed.
						closed.Add(int64(2000 - sent))
						return
					}
					t.Errorf("producer %d: unexpected batch error %v", p, batchErr)
					return
				}
				accepted.Add(int64(res.Accepted))
				for i, err := range res.Errs {
					// Exactly one of receipt / error, always.
					if (res.Receipts[i] == nil) == (err == nil) {
						t.Errorf("producer %d: receipt/error disagree at %d: rc=%v err=%v",
							p, i, res.Receipts[i], err)
					}
					switch {
					case err == nil:
					case errors.Is(err, chain.ErrMempoolFull):
						rejFull.Add(1)
						var ad *chain.AdmissionError
						if !errors.As(err, &ad) {
							t.Errorf("producer %d: ErrMempoolFull without AdmissionError: %v", p, err)
						} else if ad.RetryAfter <= 0 || ad.Capacity != 256 {
							t.Errorf("producer %d: bad admission error %+v", p, ad)
						}
					case errors.Is(err, chain.ErrClosed):
						closed.Add(1)
					default:
						t.Errorf("producer %d: untyped rejection %v", p, err)
					}
				}
			}
		}(p)
	}
	rep, err := sys.Run(2)
	wg.Wait()
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	total := accepted.Load() + rejFull.Load() + closed.Load()
	if total != producers*2000 {
		t.Errorf("outcomes account for %d txs, want %d", total, producers*2000)
	}
	if accepted.Load() == 0 || rejFull.Load() == 0 {
		t.Errorf("saturation run should both accept and reject (accepted=%d rejected=%d)",
			accepted.Load(), rejFull.Load())
	}
	if rep.IngestAdmitted != uint64(accepted.Load()) {
		t.Errorf("report admitted %d, clients saw %d", rep.IngestAdmitted, accepted.Load())
	}
	if rep.IngestRejFull != uint64(rejFull.Load()) {
		t.Errorf("report rejected-full %d, clients saw %d", rep.IngestRejFull, rejFull.Load())
	}
	if rep.IngestPeak > 256 {
		t.Errorf("ingest peak %d exceeds capacity 256", rep.IngestPeak)
	}
	if rep.IngestThrottled != 0 || rep.IngestCanceled != 0 {
		t.Errorf("unexpected throttle/cancel counts: %d/%d", rep.IngestThrottled, rep.IngestCanceled)
	}
}

// TestIngestSoftMarkShedsBatches pins the soft-mark policy: a batch
// arriving while occupancy is at or above the mark is refused whole with
// a typed ErrThrottled carrying the retry hint — no partial admission,
// every per-transaction outcome marked.
func TestIngestSoftMarkShedsBatches(t *testing.T) {
	cfg := ingestMatrixConfig(3, 1, 1)
	cfg.IngestCapacity = 256
	cfg.IngestSoftMark = 16
	wcfg := workload.DefaultMultiConfig(3, cfg.NumPools)
	wcfg.NumUsers = 10
	gen := workload.NewMulti(wcfg)
	sys, err := NewMultiSystem(cfg, gen.Users())
	if err != nil {
		t.Fatalf("NewMultiSystem: %v", err)
	}
	defer sys.Close()

	for i := 0; i < 16; i++ {
		if _, err := sys.Submit(context.Background(), gen.Next()); err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
	}
	txs := make([]*summary.Tx, 8)
	for i := range txs {
		txs[i] = gen.Next()
	}
	res, batchErr := sys.SubmitBatch(context.Background(), txs)
	if !errors.Is(batchErr, chain.ErrThrottled) {
		t.Fatalf("batch above soft mark returned %v, want ErrThrottled", batchErr)
	}
	var ad *chain.AdmissionError
	if !errors.As(batchErr, &ad) {
		t.Fatalf("ErrThrottled is not an AdmissionError: %v", batchErr)
	}
	if ad.RetryAfter <= 0 || ad.Occupancy < 16 || ad.Capacity != 256 {
		t.Errorf("admission error = %+v, want occupancy >= 16, capacity 256, positive hint", ad)
	}
	if res.Accepted != 0 {
		t.Errorf("shed batch accepted %d txs, want 0", res.Accepted)
	}
	for i := range txs {
		if res.Receipts[i] != nil || !errors.Is(res.Errs[i], chain.ErrThrottled) {
			t.Errorf("shed batch outcome %d = (%v, %v), want (nil, ErrThrottled)",
				i, res.Receipts[i], res.Errs[i])
		}
	}
	// A single submission is not a batch: it passes the soft mark and
	// only the hard capacity wall can refuse it.
	if _, err := sys.Submit(context.Background(), gen.Next()); err != nil {
		t.Errorf("single submit above soft mark: %v, want accepted", err)
	}
}

// TestIngestCancelMidBackpressure pins context handling while a
// producer is parked on a full mempool: cancellation surfaces as a typed
// ErrCanceled — distinct from ErrMempoolFull — without waiting out the
// admission deadline.
func TestIngestCancelMidBackpressure(t *testing.T) {
	cfg := ingestMatrixConfig(5, 1, 1)
	cfg.IngestCapacity = 1
	cfg.IngestMaxWait = time.Minute // far longer than the test tolerates
	wcfg := workload.DefaultMultiConfig(5, cfg.NumPools)
	wcfg.NumUsers = 10
	gen := workload.NewMulti(wcfg)
	sys, err := NewMultiSystem(cfg, gen.Users())
	if err != nil {
		t.Fatalf("NewMultiSystem: %v", err)
	}
	defer sys.Close()

	if _, err := sys.Submit(context.Background(), gen.Next()); err != nil {
		t.Fatalf("fill submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rc, err := sys.Submit(ctx, gen.Next())
	if rc != nil || !errors.Is(err, chain.ErrCanceled) {
		t.Fatalf("canceled submit = (%v, %v), want (nil, ErrCanceled)", rc, err)
	}
	if errors.Is(err, chain.ErrMempoolFull) {
		t.Error("cancellation must not also read as ErrMempoolFull")
	}
	var ad *chain.AdmissionError
	if !errors.As(err, &ad) || ad.Occupancy != 1 || ad.Capacity != 1 {
		t.Errorf("admission error = %+v, want occupancy 1/1", ad)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("cancellation took %v, should not wait out the 1m admission deadline", waited)
	}
}

// TestSubmitAfterRunReturnsClosed pins the end-of-life surface: once the
// lifecycle finished its final epoch and closed the ingest front end,
// both submission paths refuse with ErrClosed (not ErrHalted — the node
// did not fault) and a zero retry hint.
func TestSubmitAfterRunReturnsClosed(t *testing.T) {
	sysCfg, drvCfg := multiTestConfigs(5, 8, 4, 1)
	sys, _, err := NewMultiDriver(sysCfg, drvCfg)
	if err != nil {
		t.Fatalf("NewMultiDriver: %v", err)
	}
	if _, err := sys.Run(drvCfg.Epochs); err != nil {
		t.Fatalf("run: %v", err)
	}
	gen := workload.NewMulti(drvCfg.Workload)
	rc, err := sys.Submit(context.Background(), gen.Next())
	if rc != nil || !errors.Is(err, chain.ErrClosed) {
		t.Fatalf("late submit = (%v, %v), want (nil, ErrClosed)", rc, err)
	}
	if errors.Is(err, chain.ErrHalted) {
		t.Error("clean shutdown must not read as ErrHalted")
	}
	var ad *chain.AdmissionError
	if !errors.As(err, &ad) {
		t.Fatalf("ErrClosed is not an AdmissionError: %v", err)
	}
	if ad.RetryAfter != 0 {
		t.Errorf("closed-node retry hint = %v, want 0 (retrying is pointless)", ad.RetryAfter)
	}
	res, batchErr := sys.SubmitBatch(context.Background(), []*summary.Tx{gen.Next(), gen.Next()})
	if !errors.Is(batchErr, chain.ErrClosed) {
		t.Fatalf("late batch error = %v, want ErrClosed", batchErr)
	}
	for i := range res.Errs {
		if res.Receipts[i] != nil || !errors.Is(res.Errs[i], chain.ErrClosed) {
			t.Errorf("late batch outcome %d = (%v, %v), want (nil, ErrClosed)",
				i, res.Receipts[i], res.Errs[i])
		}
	}
}
