package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
	"ammboost/internal/workload"
)

// TestFactoryBackendSelection pins the documented NumPools contract:
// core.New routes NumPools > 0 to the sharded MultiSystem and zero to
// the single-pool System, and the single-pool constructor refuses a
// multi-pool config instead of silently dropping the pools.
func TestFactoryBackendSelection(t *testing.T) {
	users := []string{"u-0", "u-1"}
	single, err := New(chain.NewConfig(chain.WithCommittee(8), chain.WithMinerPopulation(20)), users, nil)
	if err != nil {
		t.Fatalf("single-pool factory: %v", err)
	}
	if _, ok := single.(*System); !ok {
		t.Fatalf("NumPools=0 built %T, want *System", single)
	}
	multi, err := New(chain.NewConfig(chain.WithPools(4), chain.WithCommittee(8), chain.WithMinerPopulation(20)), users, nil)
	if err != nil {
		t.Fatalf("multi-pool factory: %v", err)
	}
	if _, ok := multi.(*MultiSystem); !ok {
		t.Fatalf("NumPools=4 built %T, want *MultiSystem", multi)
	}
	if got := len(multi.PoolIDs()); got != 4 {
		t.Errorf("multi backend has %d pools, want 4", got)
	}
	cfg := smallConfig(27)
	cfg.NumPools = 4
	if _, err := NewSystem(cfg, users, nil); !errors.Is(err, ErrBackendMismatch) {
		t.Errorf("NewSystem with NumPools=4: err = %v, want ErrBackendMismatch", err)
	}
	if _, _, err := NewDriver(cfg, smallDriver(500_000, 1, 27)); !errors.Is(err, ErrBackendMismatch) {
		t.Errorf("NewDriver with NumPools=4: err = %v, want ErrBackendMismatch", err)
	}
}

// TestUnsubscribeReleasesSubscription: an abandoned subscription can be
// released mid-run without stalling the bus or the run.
func TestUnsubscribeReleasesSubscription(t *testing.T) {
	sys, _, err := NewDriver(smallConfig(28), smallDriver(500_000, 2, 28))
	if err != nil {
		t.Fatal(err)
	}
	abandoned := sys.Subscribe(chain.MaskMetaBlock)
	kept := sys.Subscribe(chain.MaskSyncConfirmed)
	nKept := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range kept {
			nKept++
		}
	}()
	// Never read from `abandoned`; release it after a few rounds.
	sys.Sim().At(30*time.Second, func() { sys.Unsubscribe(abandoned) })
	rep, err := sys.Run(2)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	<-done
	if nKept != rep.SyncsOK {
		t.Errorf("kept subscription saw %d syncs, want %d", nKept, rep.SyncsOK)
	}
	if _, ok := <-abandoned; ok {
		// The channel must be closed after Unsubscribe (buffered events
		// may still be consumed first; drain to the close).
		for range abandoned {
		}
	}
}

// TestMultiDepositHonorsEpoch: a deposit for a future epoch is credited
// when that epoch opens, not before.
func TestMultiDepositHonorsEpoch(t *testing.T) {
	sysCfg, drvCfg := multiTestConfigs(29, 4, 2, 3)
	node, _, err := NewMultiDriver(sysCfg, drvCfg)
	if err != nil {
		t.Fatal(err)
	}
	ms := node.(*MultiSystem)
	var future *chain.Receipt
	node.Sim().At(time.Second, func() {
		var derr error
		future, derr = node.SubmitDeposit(ms.users[0], 2, u256.FromUint64(100), u256.FromUint64(100))
		if derr != nil {
			t.Errorf("SubmitDeposit: %v", derr)
		}
		if future.Status != chain.StatusPending {
			t.Errorf("future-epoch deposit credited early: %s", future.Status)
		}
	})
	if _, err := node.Run(drvCfg.Epochs); err != nil {
		t.Fatalf("run: %v", err)
	}
	if future == nil {
		t.Fatal("deposit receipt never issued")
	}
	if future.Status != chain.StatusExecuted {
		t.Fatalf("future deposit = %s, want executed", future.Status)
	}
	if future.Epoch != 2 {
		t.Errorf("future deposit credited in epoch %d, want 2", future.Epoch)
	}
}

func isChainErr(err, sentinel error) bool { return errors.Is(err, sentinel) }

// TestSubmitValidatesUpFront pins the submission-time typed errors: an
// unknown pool, a malformed transaction, and an unfunded user are turned
// away before anything reaches the queue, and no receipt is issued.
func TestSubmitValidatesUpFront(t *testing.T) {
	sys, _, err := NewDriver(smallConfig(21), smallDriver(500_000, 2, 21))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tx   *summary.Tx
		want error
	}{
		{"unknown pool", &summary.Tx{ID: "p", Kind: gasmodel.KindSwap, User: "user-000",
			PoolID: "pool-0007", Amount: u256.FromUint64(10)}, chain.ErrUnknownPool},
		{"zero swap", &summary.Tx{ID: "z", Kind: gasmodel.KindSwap, User: "user-000"}, chain.ErrMalformedTx},
		{"inverted ticks", &summary.Tx{ID: "m", Kind: gasmodel.KindMint, User: "user-000",
			TickLower: 120, TickUpper: -120, Amount0Desired: u256.FromUint64(10)}, chain.ErrMalformedTx},
		{"burn of nothing", &summary.Tx{ID: "b", Kind: gasmodel.KindBurn, User: "user-000",
			PosID: "pos"}, chain.ErrMalformedTx},
		{"overlarge burn fraction", &summary.Tx{ID: "bf", Kind: gasmodel.KindBurn, User: "user-000",
			PosID: "pos", BurnFractionBps: 20_000}, chain.ErrMalformedTx},
		{"collect without position", &summary.Tx{ID: "c", Kind: gasmodel.KindCollect, User: "user-000"}, chain.ErrMalformedTx},
		{"unfunded user", &summary.Tx{ID: "u", Kind: gasmodel.KindSwap, User: "stranger",
			Amount: u256.FromUint64(10)}, chain.ErrUnfundedUser},
	}
	for _, tc := range cases {
		rc, err := sys.Submit(context.Background(), tc.tx)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if rc != nil {
			t.Errorf("%s: got a receipt for an invalid submission", tc.name)
		}
	}
}

// TestReceiptLifecycle follows receipts through a run that includes a
// faulty epoch (silent leader round from the FaultPlan): a healthy
// transaction advances Pending → Executed → Checkpointed → Synced →
// Pruned with monotone stage timestamps, the view-change delay shows up
// in its execution timestamp, and a transaction the executor rejects
// carries StatusRejected plus the reason.
func TestReceiptLifecycle(t *testing.T) {
	cfg := smallConfig(22)
	cfg.Faults.SilentLeaderRounds = map[[2]uint64]bool{{1, 1}: true}
	sys, _, err := NewDriver(cfg, smallDriver(500_000, 2, 22))
	if err != nil {
		t.Fatal(err)
	}
	// Submitted at t=0, consumed by epoch 1 round 1 — the silent-leader
	// round, so execution lands only after the view change.
	good, err := sys.Submit(context.Background(), &summary.Tx{
		ID: "rc-good", Kind: gasmodel.KindSwap, User: "user-000",
		ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(100),
	})
	if err != nil {
		t.Fatalf("submit good: %v", err)
	}
	// Well-formed but executor-rejected: burning a position that does
	// not exist.
	bad, err := sys.Submit(context.Background(), &summary.Tx{
		ID: "rc-bad", Kind: gasmodel.KindBurn, User: "user-000",
		PosID: "no-such-position", BurnFractionBps: 10_000,
	})
	if err != nil {
		t.Fatalf("submit bad: %v", err)
	}
	if good.Status != chain.StatusPending || bad.Status != chain.StatusPending {
		t.Fatalf("fresh receipts should be pending, got %s / %s", good.Status, bad.Status)
	}

	if _, err := sys.Run(2); err != nil {
		t.Fatalf("run: %v", err)
	}

	if good.Status != chain.StatusPruned {
		t.Fatalf("good receipt = %s, want pruned", good.Status)
	}
	if good.Epoch != 1 || good.Round != 1 {
		t.Errorf("good receipt executed at %d/%d, want 1/1", good.Epoch, good.Round)
	}
	// The silent leader forces a view change, so the round's agreement
	// takes at least the view-change timeout beyond submission.
	if good.ExecutedAt < cfg.ViewChangeTimeout {
		t.Errorf("ExecutedAt = %s, want >= view-change timeout %s", good.ExecutedAt, cfg.ViewChangeTimeout)
	}
	stages := []struct {
		name     string
		at, next time.Duration
	}{
		{"submitted→executed", good.SubmittedAt, good.ExecutedAt},
		{"executed→checkpointed", good.ExecutedAt, good.CheckpointedAt},
		{"checkpointed→synced", good.CheckpointedAt, good.SyncedAt},
		{"synced→pruned", good.SyncedAt, good.PrunedAt},
	}
	for _, st := range stages {
		if st.next < st.at {
			t.Errorf("%s went backwards: %s -> %s", st.name, st.at, st.next)
		}
	}
	if good.ExecutedAt == 0 || good.CheckpointedAt == 0 || good.SyncedAt == 0 || good.PrunedAt == 0 {
		t.Error("good receipt left unset stage timestamps")
	}

	if bad.Status != chain.StatusRejected {
		t.Fatalf("bad receipt = %s, want rejected", bad.Status)
	}
	if bad.Err == nil {
		t.Error("rejected receipt should carry the executor's reason")
	}
	if bad.SyncedAt != 0 || bad.PrunedAt != 0 {
		t.Error("rejected receipt should not advance past rejection")
	}
}

// TestSyncRevertSurfacesTypedError pins the replacement of the former
// panic: a committee that signs a corrupted digest gets its Sync
// reverted by TokenBank's TSQC verification, and Run returns
// chain.ErrSyncReverted instead of crashing. Receipts of the corrupted
// epoch stall at Checkpointed — executed and checkpointed on the
// sidechain, never synced to the mainchain.
func TestSyncRevertSurfacesTypedError(t *testing.T) {
	cfg := smallConfig(23)
	cfg.Faults.CorruptSyncEpochs = map[uint64]bool{2: true}
	sys, _, err := NewDriver(cfg, smallDriver(500_000, 3, 23))
	if err != nil {
		t.Fatal(err)
	}
	halts := sys.Subscribe(chain.MaskHalted)
	rep, err := sys.Run(3)
	if err == nil {
		t.Fatal("corrupted epoch-2 sync must surface an error")
	}
	if !errors.Is(err, chain.ErrSyncReverted) {
		t.Fatalf("err = %v, want chain.ErrSyncReverted", err)
	}
	if rep == nil {
		t.Fatal("Run should still report the partial run")
	}
	// Epoch 1 synced fine before the fault.
	if rep.SyncsOK < 1 {
		t.Errorf("SyncsOK = %d, want >= 1 (epoch 1 pre-fault)", rep.SyncsOK)
	}
	if sys.LastSyncedEpoch() != 1 {
		t.Errorf("bank synced through %d, want 1", sys.LastSyncedEpoch())
	}
	ev, ok := <-halts
	if !ok {
		t.Fatal("no halt event published")
	}
	if ev.Type != chain.EventHalted || !errors.Is(ev.Err, chain.ErrSyncReverted) {
		t.Errorf("halt event = %+v", ev)
	}
	// Submissions after the halt are refused.
	if _, err := sys.Submit(context.Background(), &summary.Tx{ID: "late", Kind: gasmodel.KindSwap,
		User: "user-000", Amount: u256.FromUint64(1)}); !errors.Is(err, chain.ErrHalted) {
		t.Errorf("post-halt submit err = %v, want ErrHalted", err)
	}
}

// TestEventStream checks the Subscribe surface end to end: counts match
// the run shape, times are monotone per type, and masks filter.
func TestEventStream(t *testing.T) {
	cfg := smallConfig(24)
	sys, _, err := NewDriver(cfg, smallDriver(500_000, 2, 24))
	if err != nil {
		t.Fatal(err)
	}
	all := sys.Subscribe(chain.MaskAll)
	syncsOnly := sys.Subscribe(chain.MaskSyncConfirmed)
	// Visibility contract: by the time a lifecycle event publishes, the
	// covered receipts already show the corresponding stage. Hooks run
	// synchronously on the simulator goroutine, so this is race-free.
	inner := sys.(*System)
	inner.bus.OnPublish(func(ev chain.Event) {
		switch ev.Type {
		case chain.EventSyncConfirmed:
			for _, rec := range inner.recsByEpoch[ev.Epoch] {
				if rec.rc.Status != chain.StatusSynced {
					t.Errorf("epoch %d receipt %s at sync-confirmed publish, want synced", ev.Epoch, rec.rc.Status)
				}
			}
		case chain.EventSummaryBlock:
			for _, rec := range inner.recsByEpoch[ev.Epoch] {
				if rec.rc.Status != chain.StatusCheckpointed {
					t.Errorf("epoch %d receipt %s at summary publish, want checkpointed", ev.Epoch, rec.rc.Status)
				}
			}
		}
	})
	type counts map[chain.EventType]int
	done := make(chan counts)
	go func() {
		c := make(counts)
		var lastAt time.Duration
		for ev := range all {
			c[ev.Type]++
			if ev.At < lastAt {
				// The bus preserves publish order; virtual time is
				// monotone within the run.
				t.Errorf("event time went backwards: %s after %s", ev.At, lastAt)
			}
			lastAt = ev.At
		}
		done <- c
	}()
	nSyncs := 0
	syncDone := make(chan struct{})
	go func() {
		for range syncsOnly {
			nSyncs++
		}
		close(syncDone)
	}()

	rep, err := sys.Run(2)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	c := <-done
	<-syncDone

	if got := c[chain.EventEpochStart]; got != rep.EpochsRun {
		t.Errorf("epoch-start events = %d, want %d", got, rep.EpochsRun)
	}
	if got := c[chain.EventMetaBlock]; got != rep.EpochsRun*cfg.EpochRounds {
		t.Errorf("meta-block events = %d, want %d", got, rep.EpochsRun*cfg.EpochRounds)
	}
	if got := c[chain.EventSyncConfirmed]; got != rep.SyncsOK {
		t.Errorf("sync-confirmed events = %d, want %d", got, rep.SyncsOK)
	}
	if got := c[chain.EventPruned]; got == 0 {
		t.Error("no pruned events")
	}
	if c[chain.EventHalted] != 0 {
		t.Errorf("unexpected halt events: %d", c[chain.EventHalted])
	}
	if nSyncs != c[chain.EventSyncConfirmed] {
		t.Errorf("masked subscription saw %d syncs, full saw %d", nSyncs, c[chain.EventSyncConfirmed])
	}
	// The collector consumed the same stream through the bus hook.
	if got := rep.Collector.LifecycleCount(chain.EventEpochStart.String()); got != rep.EpochsRun {
		t.Errorf("collector lifecycle count = %d, want %d", got, rep.EpochsRun)
	}
}

// TestDriverSkipsAheadFundingInShortRuns is the regression test for the
// two-epoch-ahead deposit funding bug: a 1-epoch run used to submit
// epoch-2 (and epoch-3) deposits on the mainchain even though those
// epochs never execute, wasting deposit gas for every user. With the
// gate, a 1-epoch run performs no mainchain deposit flows at all, while
// multi-epoch runs still fund ahead as before.
func TestDriverSkipsAheadFundingInShortRuns(t *testing.T) {
	one, _, err := NewDriver(smallConfig(25), smallDriver(500_000, 1, 25))
	if err != nil {
		t.Fatal(err)
	}
	repOne, err := one.Run(1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, n := repOne.Collector.AvgGas("deposit"); n != 0 {
		t.Errorf("1-epoch run observed %d mainchain deposit flows, want 0", n)
	}
	if _, n := repOne.Collector.AvgGas("approve"); n != 0 {
		t.Errorf("1-epoch run observed %d approvals, want 0", n)
	}
	bank := one.(*System).Bank()
	for e := uint64(2); e <= 4; e++ {
		if len(bank.Deposits[e]) != 0 {
			t.Errorf("1-epoch run funded epoch-%d deposits for %d users", e, len(bank.Deposits[e]))
		}
	}
	if err := one.Validate(); err != nil {
		t.Errorf("1-epoch invariants: %v", err)
	}
	// Documented tradeoff: the arrival tail that structurally spills into
	// drain epoch 2 is rejected there (no deposits) instead of being
	// executed on the back of full-size speculative funding. The
	// rejections stay bounded by roughly one round of arrivals.
	drv := workload.Rho(500_000, 7)
	if repOne.Rejected > 3*drv {
		t.Errorf("1-epoch run rejected %d txs, want <= ~%d (one round's tail)", repOne.Rejected, 3*drv)
	}

	// A 3-epoch run still funds epochs 2..4 ahead of execution.
	three, _, err := NewDriver(smallConfig(25), smallDriver(500_000, 3, 25))
	if err != nil {
		t.Fatal(err)
	}
	repThree, err := three.Run(3)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, n := repThree.Collector.AvgGas("deposit"); n == 0 {
		t.Error("multi-epoch run should still fund deposits ahead")
	}
	if err := three.Validate(); err != nil {
		t.Errorf("3-epoch invariants: %v", err)
	}
}

// TestDepositReceipt pins the deposit flow's receipt treatment: Pending
// until the final mainchain leg confirms, then Synced with timestamps.
func TestDepositReceipt(t *testing.T) {
	sys, _, err := NewDriver(smallConfig(26), smallDriver(500_000, 2, 26))
	if err != nil {
		t.Fatal(err)
	}
	var rc *chain.Receipt
	sys.Sim().At(time.Second, func() {
		var derr error
		rc, derr = sys.SubmitDeposit("user-001", 2, u256.FromUint64(500), u256.FromUint64(500))
		if derr != nil {
			t.Errorf("SubmitDeposit: %v", derr)
		}
		if rc.Status != chain.StatusPending {
			t.Errorf("fresh deposit receipt = %s, want pending", rc.Status)
		}
	})
	if _, err := sys.Run(2); err != nil {
		t.Fatalf("run: %v", err)
	}
	if rc == nil {
		t.Fatal("deposit receipt never issued")
	}
	if rc.Status != chain.StatusSynced {
		t.Fatalf("deposit receipt = %s, want synced", rc.Status)
	}
	if rc.SyncedAt <= rc.SubmittedAt {
		t.Errorf("deposit synced at %s, submitted at %s", rc.SyncedAt, rc.SubmittedAt)
	}
	// Malformed and unfunded deposits are refused up front.
	if _, err := sys.SubmitDeposit("user-001", 3, u256.Int{}, u256.Int{}); !errors.Is(err, chain.ErrMalformedTx) {
		t.Errorf("empty deposit err = %v, want ErrMalformedTx", err)
	}
	if _, err := sys.SubmitDeposit("stranger", 3, u256.FromUint64(1), u256.FromUint64(1)); !errors.Is(err, chain.ErrUnfundedUser) {
		t.Errorf("stranger deposit err = %v, want ErrUnfundedUser", err)
	}
}
