package gasmodel

import "testing"

func TestKeccakGas(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{0, 30}, {1, 36}, {32, 36}, {33, 42}, {256, 30 + 6*8},
	}
	for _, c := range cases {
		if got := KeccakGas(c.n); got != c.want {
			t.Errorf("KeccakGas(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSstoreGas(t *testing.T) {
	if got := SstoreGas(192); got != 6*SstoreWordGas {
		t.Errorf("SstoreGas(192) = %d", got)
	}
	if got := SstoreGas(1); got != SstoreWordGas {
		t.Errorf("SstoreGas(1) = %d", got)
	}
}

func TestSyncGasComposition(t *testing.T) {
	// One payout, one position, small summary: base + payout + 6 words +
	// pool balance + auth.
	sum := 1000
	want := TxBaseGas + PayoutEntryGas + PositionEntryWords*SstoreWordGas +
		PoolBalanceWords*SstoreWordGas + SyncAuthGas(sum)
	if got := SyncGas(1, 1, sum); got != want {
		t.Errorf("SyncGas = %d, want %d", got, want)
	}
}

func TestSyncAuthGasIncludesPrecompiles(t *testing.T) {
	g := SyncAuthGas(0)
	if g < EcMulGas+PairingGas {
		t.Errorf("auth gas %d must include ecMUL and pairing", g)
	}
}

func TestTableIVConstants(t *testing.T) {
	// Pin the paper's Table IV values.
	if ABIPayoutEntryBytes != 352 || ABIPositionEntryBytes != 416 ||
		ABIGroupKeyBytes != 128 || ABISignatureBytes != 64 {
		t.Error("mainchain entry sizes diverge from Table IV")
	}
	if SCPayoutEntryBytes != 97 || SCPositionEntryBytes != 215 {
		t.Error("sidechain entry sizes diverge from Table IV")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[TxKind]string{
		KindSwap: "swap", KindMint: "mint", KindBurn: "burn",
		KindCollect: "collect", KindFlash: "flash", KindDeposit: "deposit",
		KindSync: "sync", TxKind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestSizeLookups(t *testing.T) {
	if SepoliaTxBytes(KindSwap) != 365 || MainnetTxBytes(KindSwap) != 1008 {
		t.Error("swap sizes diverge from the measured tables")
	}
	if SepoliaTxBytes(KindSync) != 0 || MainnetTxBytes(KindFlash) != 0 {
		t.Error("non-AMM kinds should have no default size")
	}
	if UniswapOpGas(KindMint) != 435_610 {
		t.Error("mint gas diverges from Table III")
	}
}

func TestSummaryBlockBytes(t *testing.T) {
	got := SummaryBlockBytes(2, 3)
	want := 2*SCPayoutEntryBytes + 3*SCPositionEntryBytes + 200
	if got != want {
		t.Errorf("SummaryBlockBytes = %d, want %d", got, want)
	}
}
