// Package gasmodel holds the Ethereum-calibrated cost model: gas constants
// for the EVM operations TokenBank and the baseline Uniswap deployment
// perform (Table II/III of the paper), and the byte-size model for
// mainchain ABI encoding versus sidechain binary packing (Table IV and the
// Table VII traffic analysis).
package gasmodel

// Gas constants, per the paper's Table II measurements (Tenderly gas
// profiler on Sepolia) and the EVM gas schedule.
const (
	// TxBaseGas is the intrinsic cost of any transaction.
	TxBaseGas uint64 = 21_000
	// SstoreWordGas is a cold storage write of one 32-byte word.
	SstoreWordGas uint64 = 22_100
	// SloadWordGas is a cold storage read.
	SloadWordGas uint64 = 2_100
	// SstoreClearGas is a storage clear (net of the EVM's clearing
	// refund); position deletions in Sync charge this per entry.
	SstoreClearGas uint64 = 5_000
	// PayoutEntryGas is TokenBank's constant fee per payout entry
	// (balance update + transfer bookkeeping).
	PayoutEntryGas uint64 = 15_771
	// KeccakBaseGas + KeccakWordGas*words is the Keccak256 cost.
	KeccakBaseGas uint64 = 30
	KeccakWordGas uint64 = 6
	// EcMulGas is the BN256 scalar multiplication precompile (EIP-196).
	EcMulGas uint64 = 6_000
	// PairingGas is the BN256 pairing check for one pair plus base
	// (EIP-197), as measured for the paper's BLS verification.
	PairingGas uint64 = 113_000
	// DepositTwoTokensGas is the measured total for a two-token deposit
	// (two ERC20 approvals + two transferFroms + TokenBank bookkeeping).
	DepositTwoTokensGas uint64 = 105_392
)

// PositionEntryWords is the TokenBank storage footprint of one liquidity
// position entry: 192 bytes = 6 words.
const PositionEntryWords = 6

// PoolBalanceWords is the storage footprint of the liquidity pool balance
// (two reserves occupying a 192-byte packed slot group, as measured).
const PoolBalanceWords = 6

// Baseline Uniswap V3 per-operation gas, Table III (measured means on
// Sepolia). The baseline contract charges these through itemized recipes
// in internal/baseline whose totals are pinned to land on these means.
const (
	UniswapSwapGas    uint64 = 160_601
	UniswapMintGas    uint64 = 435_610
	UniswapBurnGas    uint64 = 158_473
	UniswapCollectGas uint64 = 163_743
)

// KeccakGas returns the Keccak256 cost of hashing n bytes.
func KeccakGas(n int) uint64 {
	words := uint64((n + 31) / 32)
	return KeccakBaseGas + KeccakWordGas*words
}

// SstoreGas returns the cost of persisting n bytes as 32-byte words.
func SstoreGas(n int) uint64 {
	words := uint64((n + 31) / 32)
	return SstoreWordGas * words
}

// --- Byte-size model (Table IV and Table VII) ---

// Mainchain (ABI-encoded) entry sizes in bytes. Ethereum ABI packing pads
// every field to a 32-byte word and carries offset/length headers.
const (
	ABIPayoutEntryBytes   = 352 // 11 words: header, pubkey (3), token types (2), amounts (2), epoch, flags, padding
	ABIPositionEntryBytes = 416 // 13 words: header, id, owner (3), amounts (2), fees (2), ticks (2), liquidity, flags
	ABIGroupKeyBytes      = 128 // BN256 G2 point
	ABISignatureBytes     = 64  // BN256 G1 point
	// ABIDeletedEntryBytes is a position-deletion entry: the 32-byte ID
	// in one padded word plus a flag word.
	ABIDeletedEntryBytes = 64
)

// Sidechain (binary-packed) entry sizes in bytes.
const (
	SCPayoutEntryBytes   = 97  // 65-byte pubkey + 2×16-byte amounts
	SCPositionEntryBytes = 215 // 32 id + 65 owner + 2×16 amounts + 2×16 fees + 2×4 ticks + 16 liquidity + 6 meta
)

// Baseline Uniswap transaction sizes on Sepolia (Table IV) — the simple
// router produces shorter calldata than mainnet's universal router.
const (
	SepoliaSwapTxBytes    = 365
	SepoliaMintTxBytes    = 566
	SepoliaBurnTxBytes    = 280
	SepoliaCollectTxBytes = 150
)

// Production Ethereum transaction sizes (Table VII, universal router).
const (
	MainnetSwapTxBytes    = 1008
	MainnetMintTxBytes    = 814
	MainnetBurnTxBytes    = 907
	MainnetCollectTxBytes = 922
)

// TxKind enumerates AMM operation types used across the workload, the
// sidechain executor, and the baselines.
type TxKind int

const (
	KindSwap TxKind = iota + 1
	KindMint
	KindBurn
	KindCollect
	KindFlash
	KindDeposit
	KindSync
)

// String implements fmt.Stringer.
func (k TxKind) String() string {
	switch k {
	case KindSwap:
		return "swap"
	case KindMint:
		return "mint"
	case KindBurn:
		return "burn"
	case KindCollect:
		return "collect"
	case KindFlash:
		return "flash"
	case KindDeposit:
		return "deposit"
	case KindSync:
		return "sync"
	default:
		return "unknown"
	}
}

// SepoliaTxBytes returns the Sepolia calldata size for an operation kind.
func SepoliaTxBytes(k TxKind) int {
	switch k {
	case KindSwap:
		return SepoliaSwapTxBytes
	case KindMint:
		return SepoliaMintTxBytes
	case KindBurn:
		return SepoliaBurnTxBytes
	case KindCollect:
		return SepoliaCollectTxBytes
	default:
		return 0
	}
}

// MainnetTxBytes returns the production-Ethereum size for an operation.
func MainnetTxBytes(k TxKind) int {
	switch k {
	case KindSwap:
		return MainnetSwapTxBytes
	case KindMint:
		return MainnetMintTxBytes
	case KindBurn:
		return MainnetBurnTxBytes
	case KindCollect:
		return MainnetCollectTxBytes
	default:
		return 0
	}
}

// UniswapOpGas returns the baseline per-operation gas.
func UniswapOpGas(k TxKind) uint64 {
	switch k {
	case KindSwap:
		return UniswapSwapGas
	case KindMint:
		return UniswapMintGas
	case KindBurn:
		return UniswapBurnGas
	case KindCollect:
		return UniswapCollectGas
	default:
		return 0
	}
}

// SyncAuthGas returns the TSQC verification cost for a summary payload of
// sumBytes: hash-to-point (Keccak over the summary + one ecMUL) plus the
// pairing check.
func SyncAuthGas(sumBytes int) uint64 {
	return KeccakGas(sumBytes) + EcMulGas + PairingGas
}

// SyncGas returns the full Sync call gas for an epoch summary with the
// given number of payout entries and position entries, plus the pool
// balance update and TSQC authentication.
func SyncGas(payouts, positions, sumBytes int) uint64 {
	gas := TxBaseGas
	gas += uint64(payouts) * PayoutEntryGas
	gas += uint64(positions) * PositionEntryWords * SstoreWordGas
	gas += PoolBalanceWords * SstoreWordGas
	gas += SyncAuthGas(sumBytes)
	return gas
}

// SyncTxBytes returns the mainchain byte footprint of a Sync call with the
// given entry counts (ABI encoding plus key/signature overhead).
func SyncTxBytes(payouts, positions int) int {
	return payouts*ABIPayoutEntryBytes + positions*ABIPositionEntryBytes +
		ABIGroupKeyBytes + ABISignatureBytes
}

// SummaryBlockBytes returns the sidechain byte footprint of a summary
// block with the given entry counts (binary packing plus a block header).
func SummaryBlockBytes(payouts, positions int) int {
	const headerBytes = 200 // parent hash, roots, epoch, signature
	return payouts*SCPayoutEntryBytes + positions*SCPositionEntryBytes + headerBytes
}
