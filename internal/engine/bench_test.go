package engine

import (
	"fmt"
	"testing"
	"time"

	"ammboost/internal/amm"
	"ammboost/internal/crypto/merkle"
	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/trace"
	"ammboost/internal/u256"
)

// buildBigPool creates a pool with many positions and initialized ticks,
// the state-size regime where incremental commitments matter.
func buildBigPool(tb testing.TB, positions int) *amm.Pool {
	tb.Helper()
	p, err := amm.NewPool("A", "B", 3000, 60, u256.Q96)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := p.Mint("genesis", "lp", -887220, 887220, u256.MustFromDecimal("10000000000000")); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < positions; i++ {
		lower := -60 * int32(i%53+1)
		upper := 60 * int32(i%47+1)
		if _, err := p.Mint(fmt.Sprintf("pos-%05d", i), "lp", lower, upper, u256.FromUint64(1_000_000)); err != nil {
			tb.Fatal(err)
		}
	}
	return p
}

// BenchmarkStateRoot compares a full state re-hash against the
// incremental commitment for the same small mutation (one position poke)
// on a pool with 512 positions: the full path re-serializes and re-hashes
// every chunk, the incremental path re-hashes one leaf and its tree path.
func BenchmarkStateRoot(b *testing.B) {
	const positions = 512
	b.Run("full", func(b *testing.B) {
		p := buildBigPool(b, positions)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Burn("pos-00007", "lp", u256.Zero); err != nil {
				b.Fatal(err)
			}
			_ = StateRoot("bench-pool", p)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		p := buildBigPool(b, positions)
		c := newPoolCommit()
		c.Root("bench-pool", p) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Burn("pos-00007", "lp", u256.Zero); err != nil {
				b.Fatal(err)
			}
			_ = c.Root("bench-pool", p)
		}
	})
}

// BenchmarkFoldRoots compares folding 256 pool roots through the
// fixed-width merkle path against the generic byte-slice tree.
func BenchmarkFoldRoots(b *testing.B) {
	roots := make([][32]byte, 256)
	for i := range roots {
		roots[i][0] = byte(i)
		roots[i][1] = byte(i >> 8)
	}
	b.Run("fixed32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = FoldRoots(roots)
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			leaves := make([][]byte, len(roots))
			for j := range roots {
				leaves[j] = roots[j][:]
			}
			_ = merkle.New(leaves).Root()
		}
	})
}

// epochCloseBench drives full epoch cycles on a 256-pool engine where
// ~10% of pools see traffic, the Zipf-skewed regime the incremental
// subsystem targets. Setup seeds every pool with positions and tick
// state; each iteration is one epoch: BeginEpoch (snapshot), one round
// of swaps on the active pools, EndEpoch (summaries + roots + fold).
func epochCloseBench(b *testing.B, full bool) {
	epochCloseBenchCfg(b, Config{NumPools: 256, NumShards: 8, FullRecompute: full})
}

// epochCloseState is a primed 256-pool deployment plus the fixed
// per-epoch inputs, so one close() call is exactly one measured epoch
// cycle — shared by the per-variant benchmarks and the paired
// trace-overhead measurement.
type epochCloseState struct {
	eng   *Engine
	deps  map[string]map[string]summary.Deposit
	batch []*summary.Tx
	epoch uint64
}

func (s *epochCloseState) close(b *testing.B) {
	s.epoch++
	if err := s.eng.BeginEpoch(s.epoch, s.deps); err != nil {
		b.Fatal(err)
	}
	if _, err := s.eng.ExecuteRound(s.batch, 1); err != nil {
		b.Fatal(err)
	}
	if _, err := s.eng.EndEpoch(nil); err != nil {
		b.Fatal(err)
	}
}

func newEpochCloseState(b *testing.B, cfg Config) *epochCloseState {
	const (
		activePools = 25 // <=10% of pools see traffic per epoch
		seedPos     = 24
		swapsPerEp  = 100
	)
	eng, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ids := eng.PoolIDs()
	for pi, id := range ids {
		p := eng.Pool(id)
		for j := 0; j < seedPos; j++ {
			lower := -60 * int32((pi+j*7)%40+1)
			upper := 60 * int32((pi+j*5)%40+1)
			if _, err := p.Mint(fmt.Sprintf("seed-%04d-%02d", pi, j), "lp", lower, upper, u256.FromUint64(2_000_000)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Prime the commitment caches (cold-start build outside the loop).
	eng.StateRoots()

	active := ids[:activePools]
	dep := u256.FromUint64(1 << 40)
	deps := UniformDeposits(active, []string{"trader"}, dep, dep)
	batch := make([]*summary.Tx, swapsPerEp)
	for k := range batch {
		batch[k] = &summary.Tx{
			ID: fmt.Sprintf("swap-%03d", k), Kind: gasmodel.KindSwap, User: "trader",
			PoolID: active[k%activePools], ZeroForOne: k%2 == 0, ExactIn: true,
			Amount: u256.FromUint64(10_000),
		}
	}

	return &epochCloseState{eng: eng, deps: deps, batch: batch}
}

func epochCloseBenchCfg(b *testing.B, cfg Config) {
	s := newEpochCloseState(b, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.close(b)
	}
}

// BenchmarkEpochClose is the PR's headline number: full epoch cycles on
// a 256-pool deployment with ~10% pool activity, reference full-rehash
// mode vs the incremental commitment subsystem. The "traced" variant is
// the incremental path with the lifecycle tracer attached; the paired
// "trace-overhead" sub-benchmark is what bench.sh records as
// trace_overhead_pct (gated < 3% by bench_check.sh).
func BenchmarkEpochClose(b *testing.B) {
	b.Run("full", func(b *testing.B) { epochCloseBench(b, true) })
	b.Run("incremental", func(b *testing.B) { epochCloseBench(b, false) })
	b.Run("traced", func(b *testing.B) {
		epochCloseBenchCfg(b, Config{NumPools: 256, NumShards: 8, Tracer: trace.New(8)})
	})
	// The gated ratio comes from this PAIRED measurement: each iteration
	// closes one epoch untraced and one traced back to back, so host
	// load and CPU-speed swings hit both sides equally. Comparing the
	// separate incremental/traced sub-benchmarks instead measures
	// whatever the machine was doing between their windows — observed
	// anywhere from -9% to +23% for identical code on a busy host.
	b.Run("trace-overhead", func(b *testing.B) {
		plain := newEpochCloseState(b, Config{NumPools: 256, NumShards: 8})
		traced := newEpochCloseState(b, Config{NumPools: 256, NumShards: 8, Tracer: trace.New(8)})
		var plainNS, tracedNS time.Duration
		b.ResetTimer()
		// Alternate which side runs first so cache-warmth and GC-cycle
		// placement cancel instead of systematically taxing one side.
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				t0 := time.Now()
				plain.close(b)
				t1 := time.Now()
				traced.close(b)
				plainNS += t1.Sub(t0)
				tracedNS += time.Since(t1)
			} else {
				t0 := time.Now()
				traced.close(b)
				t1 := time.Now()
				plain.close(b)
				tracedNS += t1.Sub(t0)
				plainNS += time.Since(t1)
			}
		}
		b.StopTimer()
		if plainNS > 0 {
			b.ReportMetric(100*float64(tracedNS-plainNS)/float64(plainNS), "overhead_pct")
		}
	})
}
