package engine

import (
	"fmt"
	"testing"

	"ammboost/internal/amm"
	"ammboost/internal/crypto/merkle"
	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

// buildBigPool creates a pool with many positions and initialized ticks,
// the state-size regime where incremental commitments matter.
func buildBigPool(tb testing.TB, positions int) *amm.Pool {
	tb.Helper()
	p, err := amm.NewPool("A", "B", 3000, 60, u256.Q96)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := p.Mint("genesis", "lp", -887220, 887220, u256.MustFromDecimal("10000000000000")); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < positions; i++ {
		lower := -60 * int32(i%53+1)
		upper := 60 * int32(i%47+1)
		if _, err := p.Mint(fmt.Sprintf("pos-%05d", i), "lp", lower, upper, u256.FromUint64(1_000_000)); err != nil {
			tb.Fatal(err)
		}
	}
	return p
}

// BenchmarkStateRoot compares a full state re-hash against the
// incremental commitment for the same small mutation (one position poke)
// on a pool with 512 positions: the full path re-serializes and re-hashes
// every chunk, the incremental path re-hashes one leaf and its tree path.
func BenchmarkStateRoot(b *testing.B) {
	const positions = 512
	b.Run("full", func(b *testing.B) {
		p := buildBigPool(b, positions)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Burn("pos-00007", "lp", u256.Zero); err != nil {
				b.Fatal(err)
			}
			_ = StateRoot("bench-pool", p)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		p := buildBigPool(b, positions)
		c := newPoolCommit()
		c.Root("bench-pool", p) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Burn("pos-00007", "lp", u256.Zero); err != nil {
				b.Fatal(err)
			}
			_ = c.Root("bench-pool", p)
		}
	})
}

// BenchmarkFoldRoots compares folding 256 pool roots through the
// fixed-width merkle path against the generic byte-slice tree.
func BenchmarkFoldRoots(b *testing.B) {
	roots := make([][32]byte, 256)
	for i := range roots {
		roots[i][0] = byte(i)
		roots[i][1] = byte(i >> 8)
	}
	b.Run("fixed32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = FoldRoots(roots)
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			leaves := make([][]byte, len(roots))
			for j := range roots {
				leaves[j] = roots[j][:]
			}
			_ = merkle.New(leaves).Root()
		}
	})
}

// epochCloseBench drives full epoch cycles on a 256-pool engine where
// ~10% of pools see traffic, the Zipf-skewed regime the incremental
// subsystem targets. Setup seeds every pool with positions and tick
// state; each iteration is one epoch: BeginEpoch (snapshot), one round
// of swaps on the active pools, EndEpoch (summaries + roots + fold).
func epochCloseBench(b *testing.B, full bool) {
	const (
		pools       = 256
		activePools = 25 // <=10% of pools see traffic per epoch
		seedPos     = 24
		swapsPerEp  = 100
	)
	eng, err := New(Config{NumPools: pools, NumShards: 8, FullRecompute: full})
	if err != nil {
		b.Fatal(err)
	}
	ids := eng.PoolIDs()
	for pi, id := range ids {
		p := eng.Pool(id)
		for j := 0; j < seedPos; j++ {
			lower := -60 * int32((pi+j*7)%40+1)
			upper := 60 * int32((pi+j*5)%40+1)
			if _, err := p.Mint(fmt.Sprintf("seed-%04d-%02d", pi, j), "lp", lower, upper, u256.FromUint64(2_000_000)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Prime the commitment caches (cold-start build outside the loop).
	eng.StateRoots()

	active := ids[:activePools]
	dep := u256.FromUint64(1 << 40)
	deps := UniformDeposits(active, []string{"trader"}, dep, dep)
	batch := make([]*summary.Tx, swapsPerEp)
	for k := range batch {
		batch[k] = &summary.Tx{
			ID: fmt.Sprintf("swap-%03d", k), Kind: gasmodel.KindSwap, User: "trader",
			PoolID: active[k%activePools], ZeroForOne: k%2 == 0, ExactIn: true,
			Amount: u256.FromUint64(10_000),
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch := uint64(i + 1)
		if err := eng.BeginEpoch(epoch, deps); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.ExecuteRound(batch, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.EndEpoch(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochClose is the PR's headline number: full epoch cycles on
// a 256-pool deployment with ~10% pool activity, reference full-rehash
// mode vs the incremental commitment subsystem.
func BenchmarkEpochClose(b *testing.B) {
	b.Run("full", func(b *testing.B) { epochCloseBench(b, true) })
	b.Run("incremental", func(b *testing.B) { epochCloseBench(b, false) })
}
