package engine

import (
	"time"

	"ammboost/internal/amm"
	"ammboost/internal/summary"
	"ammboost/internal/trace"
)

// ShardStat is one shard's execute-phase accounting for one epoch,
// captured at seal time when tracing is enabled: summed execute
// wall-clock, accepted transactions, their gas-model cost, and how many
// of the shard's pools were active (snapshotted) this epoch.
type ShardStat struct {
	Shard int
	Busy  time.Duration
	Txs   int
	Gas   uint64
	Pools int
}

// SealedEpoch is the frozen hand-off between an epoch's execution and its
// commitment build, the unit of work the pipelined lifecycle moves off
// the run loop. SealEpoch captures everything Finalize needs — the final
// per-pool states, the epoch's executors, the detached dirty tracking,
// and the incremental commitment caches — and leaves the engine ready
// for the next BeginEpoch. Finalize may then run on any goroutine: the
// captured pools are read-only from the engine's perspective (the next
// epoch's executors clone them but never mutate them), and the dirty
// tracking was detached at seal time, so the only writers of the captured
// structures are Finalize's own shard workers.
//
// Hand-off discipline for the caller:
//   - At most one Finalize may run at a time across the SealedEpochs of
//     one engine (they share the per-pool commitment caches), and sealed
//     epochs must finalize in seal order — the incremental commitments
//     advance epoch by epoch.
//   - Finalize must be called exactly once per sealed epoch; skipping one
//     would leave the commitment caches behind the canonical state.
type SealedEpoch struct {
	epoch uint64
	ids   []string
	// pools[i] is ids[i]'s end-of-epoch state (canonical since the seal).
	pools []*amm.Pool
	// execs[i] is the epoch executor, nil for pools untouched this epoch.
	execs    []*summary.Executor
	deposits map[string]map[string]summary.Deposit
	// dirty[i] is pools[i]'s dirty tracking detached at seal time.
	dirty        []amm.DirtyState
	commits      []*poolCommit
	nextGroupKey []byte

	numShards     int
	shardPools    [][]string
	poolIndex     map[string]int
	fullRecompute bool

	// stats holds per-shard execute accounting (nil when untraced).
	stats []ShardStat
}

// ShardStats returns the epoch's per-shard execute accounting, or nil
// when the engine ran untraced.
func (se *SealedEpoch) ShardStats() []ShardStat { return se.stats }

// Epoch returns the sealed epoch's number.
func (se *SealedEpoch) Epoch() uint64 { return se.epoch }

// ActiveSnapshots returns the sealed epoch's per-pool final states for
// the pools touched during the epoch (those with executors), in
// canonical order. The returned pools are the frozen end-of-epoch
// states — read-only by the SealedEpoch contract — which is exactly what
// the durable store encodes into the epoch's snapshot record (untouched
// pools carry forward from earlier snapshots or genesis).
func (se *SealedEpoch) ActiveSnapshots() (ids []string, pools []*amm.Pool) {
	for i, id := range se.ids {
		if se.execs[i] != nil {
			ids = append(ids, id)
			pools = append(pools, se.pools[i])
		}
	}
	return ids, pools
}

// SealEpoch closes the running epoch without building its commitment:
// canonical pool states advance to the epoch's final states and the
// frozen hand-off is captured, after which BeginEpoch may open the next
// epoch immediately. The heavy fold — per-pool sync payloads, state
// roots, the summary root — is deferred to SealedEpoch.Finalize.
// EndEpoch is exactly SealEpoch followed by an immediate Finalize, which
// is what makes the unpipelined path the differential reference for the
// pipelined one.
func (e *Engine) SealEpoch(nextGroupKey []byte) (*SealedEpoch, error) {
	if !e.running {
		return nil, ErrNoEpoch
	}
	ids := e.reg.IDs()
	se := &SealedEpoch{
		epoch:         e.epoch,
		ids:           append([]string(nil), ids...),
		pools:         make([]*amm.Pool, len(ids)),
		execs:         e.execs,
		deposits:      e.epochDeposits,
		dirty:         make([]amm.DirtyState, len(ids)),
		commits:       e.commits,
		nextGroupKey:  nextGroupKey,
		numShards:     e.numShards,
		shardPools:    e.shardPools,
		poolIndex:     e.poolIndex,
		fullRecompute: e.cfg.FullRecompute,
	}
	// Settle every active executor — the epoch's final pool mutation
	// (fee-growth pokes for summary-included positions) — then detach the
	// dirty tracking. Both are pool-local, so the seal fans out across
	// the shard workers; after this pass the sealed pools are never
	// mutated again and Finalize may read them from any goroutine.
	e.runShards(func(_ int, poolIDs []string) {
		for _, id := range poolIDs {
			i := e.poolIndex[id]
			p := e.reg.Get(id)
			if exec := e.execs[i]; exec != nil {
				exec.Settle()
				p = exec.Pool
			}
			se.pools[i] = p
			se.dirty[i] = p.TakeDirty()
		}
	})
	// Capture per-shard execute accounting and emit one execute-shard
	// span per shard that did work, before the executor slots are cleared.
	if e.tr != nil {
		se.stats = make([]ShardStat, e.numShards)
		for s := 0; s < e.numShards; s++ {
			pools := 0
			for _, id := range e.shardPools[s] {
				if e.execs[e.poolIndex[id]] != nil {
					pools++
				}
			}
			se.stats[s] = ShardStat{
				Shard: s, Busy: e.shardBusy[s], Txs: e.shardTxs[s],
				Gas: e.shardGas[s], Pools: pools,
			}
			if e.shardTxs[s] > 0 || e.shardBusy[s] > 0 {
				e.tr.Record(trace.SpanRecord{
					Stage: trace.StageExecute, Shard: int32(s), Epoch: e.epoch,
					Start: e.shardFirst[s], Dur: e.shardBusy[s],
					Pools: pools, Txs: e.shardTxs[s], Gas: e.shardGas[s],
				})
			}
		}
	}
	// Advance canonical states on the caller's goroutine (the registry
	// map must not be written concurrently). Untouched pools keep theirs.
	for i, id := range ids {
		if e.execs[i] != nil {
			e.reg.replace(id, se.pools[i])
		}
	}
	e.execs = nil
	e.epochDeposits = nil
	e.running = false
	return se, nil
}

// Finalize builds the sealed epoch's folded outcome: per-pool sync
// payloads and state roots in canonical pool order, and the summary root.
// The fold fans out across the engine's shard layout (a bounded worker
// pool: one worker per shard), so commitment hashing parallelizes the
// same way execution does. Safe to call off the engine's goroutine under
// the hand-off discipline documented on SealedEpoch.
func (se *SealedEpoch) Finalize() *EpochResult {
	payloads := make([]*summary.SyncPayload, len(se.ids))
	roots := make([][32]byte, len(se.ids))
	runSharded(se.numShards, se.shardPools, func(_ int, poolIDs []string) {
		for _, id := range poolIDs {
			i := se.poolIndex[id]
			pool := se.pools[i]
			var p *summary.SyncPayload
			if exec := se.execs[i]; exec == nil {
				p = untouchedPayload(se.epoch, pool, se.deposits[id], se.nextGroupKey)
			} else {
				p = exec.Summary(se.nextGroupKey)
			}
			p.PoolID = id
			payloads[i] = p
			if se.fullRecompute {
				roots[i] = StateRoot(id, pool)
			} else {
				roots[i] = se.commits[i].RootFrom(id, pool, &se.dirty[i])
			}
		}
	})
	return &EpochResult{
		Epoch:       se.epoch,
		PoolIDs:     se.ids,
		Payloads:    payloads,
		PoolRoots:   roots,
		SummaryRoot: FoldRoots(roots),
	}
}
