package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ammboost/internal/amm"
	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/trace"
	"ammboost/internal/u256"
)

// Engine errors.
var (
	ErrNoPools      = errors.New("engine: config needs at least one pool")
	ErrNoEpoch      = errors.New("engine: no epoch in progress (call BeginEpoch)")
	ErrEpochStarted = errors.New("engine: epoch already in progress")
)

// Config parameterizes the sharded engine. Zero values take defaults.
type Config struct {
	// Seed identifies the run for callers that derive stochastic inputs
	// (workload.MultiGenerator derives an independent per-pool RNG from
	// it). The engine's own execution path draws no randomness — results
	// depend only on pool genesis and the transaction streams — which is
	// what makes shard-count invariance possible.
	Seed int64
	// NumPools is the number of registered pools (default 1).
	NumPools int
	// NumShards is the worker-shard count (default GOMAXPROCS). Results
	// are bit-identical for any value.
	NumShards int
	// FeePips is each pool's fee (default 3000 = 0.30%).
	FeePips uint32
	// TickSpacing aligns position bounds (default 60).
	TickSpacing int32
	// InitialLiquidity seeds each pool's genesis full-range position.
	InitialLiquidity u256.Int
	// FullRecompute disables the incremental commitment cache and lazy
	// epoch snapshots: every BeginEpoch eagerly clones all pools and
	// every EndEpoch re-hashes full pool state through StateRoot. This is
	// the retained reference mode the incremental path is differentially
	// tested against; production runs leave it false.
	FullRecompute bool
	// Tracer, when non-nil, accumulates per-shard execute timing (busy
	// wall-clock, tx count, gas) each epoch and records one execute-shard
	// span per active shard at seal time. Nil costs nothing on the
	// execute path and never changes computed state.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.NumPools == 0 {
		c.NumPools = 1
	}
	if c.NumShards <= 0 {
		c.NumShards = runtime.GOMAXPROCS(0)
	}
	if c.FeePips == 0 {
		c.FeePips = 3000
	}
	if c.TickSpacing == 0 {
		c.TickSpacing = 60
	}
	if c.InitialLiquidity.IsZero() {
		c.InitialLiquidity = u256.MustFromDecimal("10000000000000") // 1e13
	}
	return c
}

// Engine executes transactions for N registered pools across worker
// shards. Pools are partitioned by ShardOf; a pool's transactions always
// execute sequentially in submission order on its owning shard, so state
// evolution per pool is independent of the shard count. The engine is not
// safe for concurrent use by multiple callers; internally it fans out one
// goroutine per shard.
type Engine struct {
	cfg       Config
	reg       *Registry
	numShards int
	// shardPools[s] lists shard s's pools in canonical order.
	shardPools [][]string
	// poolIndex maps a pool ID to its canonical index.
	poolIndex map[string]int

	epoch   uint64
	running bool
	// execs[i] is pool i's epoch executor, created lazily on the pool's
	// first transaction (or deposit) of the epoch so SnapshotBank cost is
	// proportional to active pools, not registered pools. Slots are
	// written only by the owning shard (or between rounds on the caller's
	// goroutine), so no locking is needed.
	execs []*summary.Executor
	// epochDeposits holds BeginEpoch's per-pool deposit earmarks for
	// lazily created executors; read-only for the epoch's duration.
	epochDeposits map[string]map[string]summary.Deposit
	// commits[i] caches pool i's incremental state commitment.
	commits []*poolCommit

	// Cumulative stats across all epochs.
	Accepted int
	Rejected int

	// Execute-shard tracing accumulators (allocated only when cfg.Tracer
	// is set; each shard writes its own slot, so no locking is needed).
	tr         *trace.Tracer
	shardBusy  []time.Duration // summed execute wall-clock this epoch
	shardTxs   []int           // accepted transactions this epoch
	shardGas   []uint64        // gas-model cost of accepted transactions
	shardFirst []time.Duration // tracer offset of the shard's first work
}

// GenesisPositionID names pool i's genesis full-range position.
func GenesisPositionID(poolID string) string { return poolID + "-genesis" }

// New builds the engine and registers cfg.NumPools pools, each seeded
// with a full-range genesis position at price 1.0.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.NumPools < 1 {
		return nil, ErrNoPools
	}
	e := &Engine{
		cfg:       cfg,
		reg:       NewRegistry(),
		numShards: cfg.NumShards,
		poolIndex: make(map[string]int),
		tr:        cfg.Tracer,
	}
	if e.tr != nil {
		e.shardBusy = make([]time.Duration, cfg.NumShards)
		e.shardTxs = make([]int, cfg.NumShards)
		e.shardGas = make([]uint64, cfg.NumShards)
		e.shardFirst = make([]time.Duration, cfg.NumShards)
	}
	for i := 0; i < cfg.NumPools; i++ {
		id := PoolName(i)
		pool, err := amm.NewPool("A", "B", cfg.FeePips, cfg.TickSpacing, u256.Q96)
		if err != nil {
			return nil, err
		}
		if _, err := pool.Mint(GenesisPositionID(id), "lp-genesis", -887220, 887220, cfg.InitialLiquidity); err != nil {
			return nil, fmt.Errorf("engine: genesis mint for %s: %w", id, err)
		}
		if err := e.reg.Register(id, pool); err != nil {
			return nil, err
		}
	}
	e.buildShards()
	e.commits = make([]*poolCommit, cfg.NumPools)
	for i := range e.commits {
		e.commits[i] = newPoolCommit()
	}
	return e, nil
}

// buildShards partitions the canonical pool list across shards.
func (e *Engine) buildShards() {
	e.shardPools = make([][]string, e.numShards)
	for i, id := range e.reg.IDs() {
		e.poolIndex[id] = i
		s := ShardOf(id, e.numShards)
		e.shardPools[s] = append(e.shardPools[s], id)
	}
}

// NumShards returns the worker-shard count.
func (e *Engine) NumShards() int { return e.numShards }

// PoolIDs returns the registered pool IDs in canonical order.
func (e *Engine) PoolIDs() []string { return e.reg.IDs() }

// Pool returns the canonical (epoch-start) state of a pool.
func (e *Engine) Pool(id string) *amm.Pool { return e.reg.Get(id) }

// Epoch returns the epoch in progress (0 before the first BeginEpoch).
func (e *Engine) Epoch() uint64 { return e.epoch }

// runShards invokes fn once per shard, concurrently, and waits. Each fn
// call touches only its shard's pools, so no synchronization beyond the
// final barrier is needed.
func (e *Engine) runShards(fn func(shard int, poolIDs []string)) {
	runSharded(e.numShards, e.shardPools, fn)
}

// runSharded is the shard fan-out shared by the engine and by sealed
// epochs finalizing off the engine's goroutine.
func runSharded(numShards int, shardPools [][]string, fn func(shard int, poolIDs []string)) {
	if numShards == 1 {
		fn(0, shardPools[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(numShards)
	for s := 0; s < numShards; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s, shardPools[s])
		}(s)
	}
	wg.Wait()
}

// BeginEpoch opens an epoch (SnapshotBank). deposits maps pool ID →
// user → the epoch deposit earmarked for that pool; pools absent from
// the map start with no deposits (their transactions are rejected until
// AddDeposit). Snapshots are lazy: a pool's state is cloned into a
// per-pool executor only when its first transaction or deposit of the
// epoch arrives, so epoch-open cost is proportional to the epoch's
// active pools instead of all registered pools. The deposits map is
// retained by reference until EndEpoch for lazy executor creation; the
// caller must not mutate it while the epoch runs. Config.FullRecompute
// restores the eager clone-everything behavior for reference runs.
func (e *Engine) BeginEpoch(epoch uint64, deposits map[string]map[string]summary.Deposit) error {
	if e.running {
		return ErrEpochStarted
	}
	ids := e.reg.IDs()
	e.execs = make([]*summary.Executor, len(ids))
	e.epochDeposits = deposits
	e.epoch = epoch
	e.running = true
	if e.tr != nil {
		for s := 0; s < e.numShards; s++ {
			e.shardBusy[s], e.shardTxs[s], e.shardGas[s], e.shardFirst[s] = 0, 0, 0, 0
		}
	}
	if e.cfg.FullRecompute {
		e.runShards(func(_ int, poolIDs []string) {
			for _, id := range poolIDs {
				i := e.poolIndex[id]
				e.execs[i] = summary.NewExecutor(epoch, e.reg.Get(id), deposits[id])
			}
		})
	}
	return nil
}

// execFor returns pool index i's executor, snapshotting the pool on
// first use. Safe only on the pool's owning shard or between rounds.
func (e *Engine) execFor(i int, id string) *summary.Executor {
	exec := e.execs[i]
	if exec == nil {
		exec = summary.NewExecutor(e.epoch, e.reg.Get(id), e.epochDeposits[id])
		e.execs[i] = exec
	}
	return exec
}

// AddDeposit credits a user's mid-epoch deposit on one pool.
func (e *Engine) AddDeposit(poolID, user string, amount0, amount1 u256.Int) error {
	if !e.running {
		return ErrNoEpoch
	}
	i, ok := e.poolIndex[poolID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPool, poolID)
	}
	e.execFor(i, poolID).AddDeposit(user, amount0, amount1)
	return nil
}

// WithdrawDeposit debits a user's mid-epoch deposit on one pool — the
// origin-chain half of a cross-chain transfer. The debit fails atomically
// (summary.ErrInsufficientDeposit) when the remaining deposit cannot
// cover it.
func (e *Engine) WithdrawDeposit(poolID, user string, amount0, amount1 u256.Int) error {
	if !e.running {
		return ErrNoEpoch
	}
	i, ok := e.poolIndex[poolID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPool, poolID)
	}
	return e.execFor(i, poolID).WithdrawDeposit(user, amount0, amount1)
}

// RoundResult reports one round's sharded execution.
type RoundResult struct {
	// Included lists the accepted transactions in submission order
	// (ready for meta-block packing).
	Included []*summary.Tx
	// Rejected counts transactions that failed validation, including
	// those routed to unregistered pools.
	Rejected int
}

// ExecuteRound executes a batch against the epoch snapshots: the batch is
// partitioned per pool (preserving submission order within each pool) and
// shards execute their pools' slices concurrently. A transaction with an
// empty PoolID routes to the first registered pool.
func (e *Engine) ExecuteRound(txs []*summary.Tx, round uint64) (RoundResult, error) {
	if !e.running {
		return RoundResult{}, ErrNoEpoch
	}
	defaultPool := e.reg.IDs()[0]
	// Partition: per-pool index lists in submission order.
	perPool := make(map[string][]int)
	accepted := make([]bool, len(txs))
	unknown := 0
	for i, tx := range txs {
		id := tx.PoolID
		if id == "" {
			id = defaultPool
		}
		if _, ok := e.poolIndex[id]; !ok {
			unknown++
			continue
		}
		perPool[id] = append(perPool[id], i)
	}
	rejectedPerShard := make([]int, e.numShards)
	e.runShards(func(shard int, poolIDs []string) {
		var roundStart time.Duration
		if e.tr != nil {
			roundStart = e.tr.Since()
		}
		for _, id := range poolIDs {
			idxs := perPool[id]
			if len(idxs) == 0 {
				continue
			}
			exec := e.execFor(e.poolIndex[id], id)
			for _, i := range idxs {
				if err := exec.Apply(txs[i], round); err != nil {
					rejectedPerShard[shard]++
					continue
				}
				accepted[i] = true
				if e.tr != nil {
					e.shardTxs[shard]++
					e.shardGas[shard] += gasmodel.UniswapOpGas(txs[i].Kind)
				}
			}
		}
		if e.tr != nil {
			if e.shardBusy[shard] == 0 {
				e.shardFirst[shard] = roundStart
			}
			e.shardBusy[shard] += e.tr.Since() - roundStart
		}
	})
	res := RoundResult{Rejected: unknown}
	for _, r := range rejectedPerShard {
		res.Rejected += r
	}
	for i, ok := range accepted {
		if ok {
			res.Included = append(res.Included, txs[i])
		}
	}
	e.Accepted += len(res.Included)
	e.Rejected += res.Rejected
	return res, nil
}

// EpochResult is the epoch's folded outcome: per-pool sync payloads and
// state roots in canonical pool order, and the single epoch summary root
// every shard layout agrees on.
type EpochResult struct {
	Epoch   uint64
	PoolIDs []string
	// Payloads[i] summarizes PoolIDs[i]; PoolID is set on each payload.
	Payloads []*summary.SyncPayload
	// PoolRoots[i] is the end-of-epoch state root of PoolIDs[i].
	PoolRoots [][32]byte
	// SummaryRoot folds PoolRoots in canonical order: identical for any
	// shard count under the same seed and traffic.
	SummaryRoot [32]byte
}

// RootFor returns the state root of one pool.
func (r *EpochResult) RootFor(poolID string) ([32]byte, bool) {
	for i, id := range r.PoolIDs {
		if id == poolID {
			return r.PoolRoots[i], true
		}
	}
	return [32]byte{}, false
}

// poolRoot returns pool i's state root: the incremental commitment by
// default, the full re-hash in FullRecompute reference mode. Dirty
// tracking is detached either way so both modes leave identical state.
func (e *Engine) poolRoot(i int, id string, p *amm.Pool) [32]byte {
	d := p.TakeDirty()
	if e.cfg.FullRecompute {
		return StateRoot(id, p)
	}
	return e.commits[i].RootFrom(id, p, &d)
}

// untouchedPayload is the sync payload of a pool with no executor this
// epoch: nothing traded, so the payout list is exactly the epoch's
// earmarked deposits and the position list is empty. It is bit-identical
// to what an eagerly created executor with no transactions produces.
func untouchedPayload(epoch uint64, p *amm.Pool, deposits map[string]summary.Deposit, nextGroupKey []byte) *summary.SyncPayload {
	sp := &summary.SyncPayload{
		Epoch:        epoch,
		PoolReserve0: p.Reserve0,
		PoolReserve1: p.Reserve1,
		NextGroupKey: nextGroupKey,
	}
	if len(deposits) > 0 {
		sp.Payouts = make([]summary.PayoutEntry, 0, len(deposits))
		for user, d := range deposits {
			sp.Payouts = append(sp.Payouts, summary.PayoutEntry{User: user, Amount0: d.Amount0, Amount1: d.Amount1})
		}
		sp.SortEntries()
	}
	return sp
}

// EndEpoch folds every pool's epoch into its sync payload, computes state
// roots, advances each pool's canonical state to the epoch's final state,
// and returns the folded result. Pools untouched this epoch were never
// snapshotted: their payloads are derived directly from canonical state
// and their roots answered from the commitment cache, so epoch-close cost
// scales with the epoch's activity rather than accumulated state.
//
// EndEpoch is exactly SealEpoch + Finalize run back to back on the
// caller's goroutine; the pipelined lifecycle calls the two halves
// separately so the fold overlaps the next epoch's execution.
func (e *Engine) EndEpoch(nextGroupKey []byte) (*EpochResult, error) {
	sealed, err := e.SealEpoch(nextGroupKey)
	if err != nil {
		return nil, err
	}
	return sealed.Finalize(), nil
}

// StateRoots returns the current canonical state root of every pool in
// canonical order (valid between epochs). Between epochs every pool is
// clean, so the incremental path answers entirely from cached roots.
//
// "Between epochs" includes the commit stage: StateRoots shares the
// per-pool commitment caches with SealedEpoch.Finalize, so it must not
// run while a sealed epoch is still finalizing (in a pipelined
// MultiSystem, epoch N's Finalize overlaps epoch N+1's execution — an
// OnEpochStart hook is NOT a safe place to call this; read roots from
// the epoch's EpochResult or the run report instead).
func (e *Engine) StateRoots() [][32]byte {
	ids := e.reg.IDs()
	roots := make([][32]byte, len(ids))
	e.runShards(func(_ int, poolIDs []string) {
		for _, id := range poolIDs {
			i := e.poolIndex[id]
			roots[i] = e.poolRoot(i, id, e.reg.Get(id))
		}
	})
	return roots
}

// RestorePools replaces the canonical state of the named pools with
// recovered snapshots (crash recovery, before any BeginEpoch). The
// incremental commitment caches for restored pools are reset, so the
// next epoch close rebuilds their commitments from the restored state —
// the recovered roots are therefore re-derived, never trusted from disk.
func (e *Engine) RestorePools(pools map[string]*amm.Pool) error {
	if e.running {
		return ErrEpochStarted
	}
	for id, p := range pools {
		i, ok := e.poolIndex[id]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownPool, id)
		}
		e.reg.replace(id, p)
		e.commits[i] = newPoolCommit()
	}
	return nil
}

// UniformDeposits earmarks the same two-token deposit for every (pool,
// user) pair — the multi-pool analogue of the paper's per-epoch deposit.
func UniformDeposits(poolIDs, users []string, amount0, amount1 u256.Int) map[string]map[string]summary.Deposit {
	out := make(map[string]map[string]summary.Deposit, len(poolIDs))
	for _, pid := range poolIDs {
		bucket := make(map[string]summary.Deposit, len(users))
		for _, u := range users {
			bucket[u] = summary.Deposit{Amount0: amount0, Amount1: amount1}
		}
		out[pid] = bucket
	}
	return out
}
