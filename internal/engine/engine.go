package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ammboost/internal/amm"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

// Engine errors.
var (
	ErrNoPools      = errors.New("engine: config needs at least one pool")
	ErrNoEpoch      = errors.New("engine: no epoch in progress (call BeginEpoch)")
	ErrEpochStarted = errors.New("engine: epoch already in progress")
)

// Config parameterizes the sharded engine. Zero values take defaults.
type Config struct {
	// Seed identifies the run for callers that derive stochastic inputs
	// (workload.MultiGenerator derives an independent per-pool RNG from
	// it). The engine's own execution path draws no randomness — results
	// depend only on pool genesis and the transaction streams — which is
	// what makes shard-count invariance possible.
	Seed int64
	// NumPools is the number of registered pools (default 1).
	NumPools int
	// NumShards is the worker-shard count (default GOMAXPROCS). Results
	// are bit-identical for any value.
	NumShards int
	// FeePips is each pool's fee (default 3000 = 0.30%).
	FeePips uint32
	// TickSpacing aligns position bounds (default 60).
	TickSpacing int32
	// InitialLiquidity seeds each pool's genesis full-range position.
	InitialLiquidity u256.Int
}

func (c Config) withDefaults() Config {
	if c.NumPools == 0 {
		c.NumPools = 1
	}
	if c.NumShards <= 0 {
		c.NumShards = runtime.GOMAXPROCS(0)
	}
	if c.FeePips == 0 {
		c.FeePips = 3000
	}
	if c.TickSpacing == 0 {
		c.TickSpacing = 60
	}
	if c.InitialLiquidity.IsZero() {
		c.InitialLiquidity = u256.MustFromDecimal("10000000000000") // 1e13
	}
	return c
}

// Engine executes transactions for N registered pools across worker
// shards. Pools are partitioned by ShardOf; a pool's transactions always
// execute sequentially in submission order on its owning shard, so state
// evolution per pool is independent of the shard count. The engine is not
// safe for concurrent use by multiple callers; internally it fans out one
// goroutine per shard.
type Engine struct {
	cfg       Config
	reg       *Registry
	numShards int
	// shardPools[s] lists shard s's pools in canonical order.
	shardPools [][]string
	// poolIndex maps a pool ID to its canonical index.
	poolIndex map[string]int

	epoch   uint64
	running bool
	execs   map[string]*summary.Executor

	// Cumulative stats across all epochs.
	Accepted int
	Rejected int
}

// GenesisPositionID names pool i's genesis full-range position.
func GenesisPositionID(poolID string) string { return poolID + "-genesis" }

// New builds the engine and registers cfg.NumPools pools, each seeded
// with a full-range genesis position at price 1.0.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.NumPools < 1 {
		return nil, ErrNoPools
	}
	e := &Engine{
		cfg:       cfg,
		reg:       NewRegistry(),
		numShards: cfg.NumShards,
		poolIndex: make(map[string]int),
	}
	for i := 0; i < cfg.NumPools; i++ {
		id := PoolName(i)
		pool, err := amm.NewPool("A", "B", cfg.FeePips, cfg.TickSpacing, u256.Q96)
		if err != nil {
			return nil, err
		}
		if _, err := pool.Mint(GenesisPositionID(id), "lp-genesis", -887220, 887220, cfg.InitialLiquidity); err != nil {
			return nil, fmt.Errorf("engine: genesis mint for %s: %w", id, err)
		}
		if err := e.reg.Register(id, pool); err != nil {
			return nil, err
		}
	}
	e.buildShards()
	return e, nil
}

// buildShards partitions the canonical pool list across shards.
func (e *Engine) buildShards() {
	e.shardPools = make([][]string, e.numShards)
	for i, id := range e.reg.IDs() {
		e.poolIndex[id] = i
		s := ShardOf(id, e.numShards)
		e.shardPools[s] = append(e.shardPools[s], id)
	}
}

// NumShards returns the worker-shard count.
func (e *Engine) NumShards() int { return e.numShards }

// PoolIDs returns the registered pool IDs in canonical order.
func (e *Engine) PoolIDs() []string { return e.reg.IDs() }

// Pool returns the canonical (epoch-start) state of a pool.
func (e *Engine) Pool(id string) *amm.Pool { return e.reg.Get(id) }

// Epoch returns the epoch in progress (0 before the first BeginEpoch).
func (e *Engine) Epoch() uint64 { return e.epoch }

// runShards invokes fn once per shard, concurrently, and waits. Each fn
// call touches only its shard's pools, so no synchronization beyond the
// final barrier is needed.
func (e *Engine) runShards(fn func(shard int, poolIDs []string)) {
	if e.numShards == 1 {
		fn(0, e.shardPools[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(e.numShards)
	for s := 0; s < e.numShards; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s, e.shardPools[s])
		}(s)
	}
	wg.Wait()
}

// BeginEpoch snapshots every registered pool into a per-pool executor
// (SnapshotBank across all pools). deposits maps pool ID → user → the
// epoch deposit earmarked for that pool; pools absent from the map start
// with no deposits (their transactions are rejected until AddDeposit).
func (e *Engine) BeginEpoch(epoch uint64, deposits map[string]map[string]summary.Deposit) error {
	if e.running {
		return ErrEpochStarted
	}
	ids := e.reg.IDs()
	execs := make([]*summary.Executor, len(ids))
	e.runShards(func(_ int, poolIDs []string) {
		for _, id := range poolIDs {
			execs[e.poolIndex[id]] = summary.NewExecutor(epoch, e.reg.Get(id), deposits[id])
		}
	})
	e.execs = make(map[string]*summary.Executor, len(ids))
	for i, id := range ids {
		e.execs[id] = execs[i]
	}
	e.epoch = epoch
	e.running = true
	return nil
}

// AddDeposit credits a user's mid-epoch deposit on one pool.
func (e *Engine) AddDeposit(poolID, user string, amount0, amount1 u256.Int) error {
	if !e.running {
		return ErrNoEpoch
	}
	exec := e.execs[poolID]
	if exec == nil {
		return fmt.Errorf("%w: %s", ErrUnknownPool, poolID)
	}
	exec.AddDeposit(user, amount0, amount1)
	return nil
}

// RoundResult reports one round's sharded execution.
type RoundResult struct {
	// Included lists the accepted transactions in submission order
	// (ready for meta-block packing).
	Included []*summary.Tx
	// Rejected counts transactions that failed validation, including
	// those routed to unregistered pools.
	Rejected int
}

// ExecuteRound executes a batch against the epoch snapshots: the batch is
// partitioned per pool (preserving submission order within each pool) and
// shards execute their pools' slices concurrently. A transaction with an
// empty PoolID routes to the first registered pool.
func (e *Engine) ExecuteRound(txs []*summary.Tx, round uint64) (RoundResult, error) {
	if !e.running {
		return RoundResult{}, ErrNoEpoch
	}
	defaultPool := e.reg.IDs()[0]
	// Partition: per-pool index lists in submission order.
	perPool := make(map[string][]int)
	accepted := make([]bool, len(txs))
	unknown := 0
	for i, tx := range txs {
		id := tx.PoolID
		if id == "" {
			id = defaultPool
		}
		if e.execs[id] == nil {
			unknown++
			continue
		}
		perPool[id] = append(perPool[id], i)
	}
	rejectedPerShard := make([]int, e.numShards)
	e.runShards(func(shard int, poolIDs []string) {
		for _, id := range poolIDs {
			idxs := perPool[id]
			if len(idxs) == 0 {
				continue
			}
			exec := e.execs[id]
			for _, i := range idxs {
				if err := exec.Apply(txs[i], round); err != nil {
					rejectedPerShard[shard]++
					continue
				}
				accepted[i] = true
			}
		}
	})
	res := RoundResult{Rejected: unknown}
	for _, r := range rejectedPerShard {
		res.Rejected += r
	}
	for i, ok := range accepted {
		if ok {
			res.Included = append(res.Included, txs[i])
		}
	}
	e.Accepted += len(res.Included)
	e.Rejected += res.Rejected
	return res, nil
}

// EpochResult is the epoch's folded outcome: per-pool sync payloads and
// state roots in canonical pool order, per-shard roots (diagnostics), and
// the single epoch summary root every shard layout agrees on.
type EpochResult struct {
	Epoch   uint64
	PoolIDs []string
	// Payloads[i] summarizes PoolIDs[i]; PoolID is set on each payload.
	Payloads []*summary.SyncPayload
	// PoolRoots[i] is the end-of-epoch state root of PoolIDs[i].
	PoolRoots [][32]byte
	// ShardRoots[s] folds shard s's pool roots (varies with layout).
	ShardRoots [][32]byte
	// SummaryRoot folds PoolRoots in canonical order: identical for any
	// shard count under the same seed and traffic.
	SummaryRoot [32]byte
}

// RootFor returns the state root of one pool.
func (r *EpochResult) RootFor(poolID string) ([32]byte, bool) {
	for i, id := range r.PoolIDs {
		if id == poolID {
			return r.PoolRoots[i], true
		}
	}
	return [32]byte{}, false
}

// EndEpoch folds every pool's epoch into its sync payload, computes state
// roots, advances each pool's canonical state to the epoch's final state,
// and returns the folded result.
func (e *Engine) EndEpoch(nextGroupKey []byte) (*EpochResult, error) {
	if !e.running {
		return nil, ErrNoEpoch
	}
	ids := e.reg.IDs()
	payloads := make([]*summary.SyncPayload, len(ids))
	roots := make([][32]byte, len(ids))
	finals := make([]*amm.Pool, len(ids))
	e.runShards(func(_ int, poolIDs []string) {
		for _, id := range poolIDs {
			i := e.poolIndex[id]
			exec := e.execs[id]
			p := exec.Summary(nextGroupKey)
			p.PoolID = id
			payloads[i] = p
			finals[i] = exec.Pool
			roots[i] = StateRoot(id, exec.Pool)
		}
	})
	// Advance canonical pool states on the caller's goroutine (the
	// registry map is not written concurrently).
	for i, id := range ids {
		e.reg.replace(id, finals[i])
	}
	shardRoots := make([][32]byte, e.numShards)
	for s, poolIDs := range e.shardPools {
		rs := make([][32]byte, len(poolIDs))
		for j, id := range poolIDs {
			rs[j] = roots[e.poolIndex[id]]
		}
		shardRoots[s] = FoldRoots(rs)
	}
	res := &EpochResult{
		Epoch:       e.epoch,
		PoolIDs:     append([]string(nil), ids...),
		Payloads:    payloads,
		PoolRoots:   roots,
		ShardRoots:  shardRoots,
		SummaryRoot: FoldRoots(roots),
	}
	e.execs = nil
	e.running = false
	return res, nil
}

// StateRoots returns the current canonical state root of every pool in
// canonical order (valid between epochs).
func (e *Engine) StateRoots() [][32]byte {
	ids := e.reg.IDs()
	roots := make([][32]byte, len(ids))
	e.runShards(func(_ int, poolIDs []string) {
		for _, id := range poolIDs {
			roots[e.poolIndex[id]] = StateRoot(id, e.reg.Get(id))
		}
	})
	return roots
}

// UniformDeposits earmarks the same two-token deposit for every (pool,
// user) pair — the multi-pool analogue of the paper's per-epoch deposit.
func UniformDeposits(poolIDs, users []string, amount0, amount1 u256.Int) map[string]map[string]summary.Deposit {
	out := make(map[string]map[string]summary.Deposit, len(poolIDs))
	for _, pid := range poolIDs {
		bucket := make(map[string]summary.Deposit, len(users))
		for _, u := range users {
			bucket[u] = summary.Deposit{Amount0: amount0, Amount1: amount1}
		}
		out[pid] = bucket
	}
	return out
}
