package engine

import (
	"sort"

	"ammboost/internal/amm"
	"ammboost/internal/crypto/merkle"
)

// poolCommit is one pool's incremental state commitment: the chunk-leaf
// hashes of the last committed state plus the updatable Merkle tree over
// them. Epoch close asks each pool for its root; a pool untouched this
// epoch answers from cache in O(1), a touched pool re-hashes only its
// dirty chunks and either recomputes the tree paths above them (when the
// tick/position sets are unchanged) or re-folds the tree from cached
// leaf hashes (when leaves were inserted or removed). Differential tests
// pin the result to StateRoot's full re-hash bit for bit.
//
// Each poolCommit is owned by the pool's shard: the engine never lets
// two goroutines touch the same instance concurrently.
// smallPoolLeaves is the chunk count below which a full re-hash is
// cheaper than maintaining the leaf caches and updatable tree; for such
// pools the commit keeps only the cached root (idle pools still answer
// in O(1)).
const smallPoolLeaves = 64

type poolCommit struct {
	valid bool // root reflects the pool's current state
	root  [32]byte
	// leavesValid reports that the leaf caches and tree mirror the last
	// committed state; it is dropped when a small-pool commit bypasses
	// cache maintenance.
	leavesValid bool

	headerLeaf [32]byte
	tickKeys   []int32            // sorted ticks as of the last commit
	posKeys    []string           // sorted position IDs as of the last commit
	tickLeaf   map[int32][32]byte // cached per-tick chunk hashes
	posLeaf    map[string][32]byte

	tree   *merkle.Updatable
	buf    []byte     // chunk serialization scratch
	hashes [][32]byte // leaf-hash assembly scratch
}

func newPoolCommit() *poolCommit {
	return &poolCommit{
		tickLeaf: make(map[int32][32]byte),
		posLeaf:  make(map[string][32]byte),
	}
}

// Root returns the commitment root for the pool's current state and
// clears the pool's dirty tracking: the cache now reflects that state.
func (c *poolCommit) Root(poolID string, p *amm.Pool) [32]byte {
	d := p.TakeDirty()
	return c.RootFrom(poolID, p, &d)
}

// RootFrom computes the commitment root for a pool whose dirty tracking
// was already detached with TakeDirty. This is the pipelined epoch
// lifecycle's entry point: the sealed pool is read-only (later epochs
// clone it but never mutate it), so the commit job may run on another
// goroutine while the next epoch executes.
func (c *poolCommit) RootFrom(poolID string, p *amm.Pool, d *amm.DirtyState) [32]byte {
	if c.valid && !d.Dirty() {
		return c.root
	}
	if 1+p.NumTicks()+p.NumPositions() < smallPoolLeaves {
		c.root = StateRoot(poolID, p)
		c.leavesValid = false
	} else {
		if c.leavesValid && !d.Structural {
			c.updatePaths(poolID, p, d)
		} else {
			c.rebuild(poolID, p, d)
		}
		c.leavesValid = true
		c.root = c.tree.Root()
	}
	c.valid = true
	return c.root
}

// updatePaths handles the common case — value changes only, no leaf
// insertions or removals — with O(dirty · log n) hashing.
func (c *poolCommit) updatePaths(poolID string, p *amm.Pool, d *amm.DirtyState) {
	if d.Header {
		c.buf = appendHeaderChunk(c.buf[:0], poolID, p)
		c.headerLeaf = merkle.HashLeaf(c.buf)
		c.tree.Update(0, c.headerLeaf)
	}
	for tick := range d.Ticks {
		// No structural change, so every dirty tick is still initialized
		// and sits at its cached index.
		i := sort.Search(len(c.tickKeys), func(i int) bool { return c.tickKeys[i] >= tick })
		c.buf = appendTickChunk(c.buf[:0], tick, p.TickInfoAt(tick))
		h := merkle.HashLeaf(c.buf)
		c.tickLeaf[tick] = h
		c.tree.Update(1+i, h)
	}
	base := 1 + len(c.tickKeys)
	for id := range d.Positions {
		i := sort.SearchStrings(c.posKeys, id)
		c.buf = appendPositionChunk(c.buf[:0], p.Position(id))
		h := merkle.HashLeaf(c.buf)
		c.posLeaf[id] = h
		c.tree.Update(base+i, h)
	}
}

// rebuild handles structural changes and cold starts: dirty chunks are
// re-hashed (or dropped, for removed leaves), untouched chunk hashes are
// reused, and the tree is re-folded over the new leaf layout.
func (c *poolCommit) rebuild(poolID string, p *amm.Pool, d *amm.DirtyState) {
	ticks := p.TickKeys()
	positions := p.PositionKeys()

	if !c.leavesValid {
		// Cold start: hash every chunk.
		clear(c.tickLeaf)
		clear(c.posLeaf)
		c.buf = appendHeaderChunk(c.buf[:0], poolID, p)
		c.headerLeaf = merkle.HashLeaf(c.buf)
		for _, tick := range ticks {
			c.buf = appendTickChunk(c.buf[:0], tick, p.TickInfoAt(tick))
			c.tickLeaf[tick] = merkle.HashLeaf(c.buf)
		}
		for _, id := range positions {
			c.buf = appendPositionChunk(c.buf[:0], p.Position(id))
			c.posLeaf[id] = merkle.HashLeaf(c.buf)
		}
	} else {
		if d.Header {
			c.buf = appendHeaderChunk(c.buf[:0], poolID, p)
			c.headerLeaf = merkle.HashLeaf(c.buf)
		}
		// Removed leaves are always in the dirty sets (flips and deletes
		// mark them), so processing the dirty sets alone keeps the leaf
		// maps covering exactly the live keys.
		for tick := range d.Ticks {
			if ti := p.TickInfoAt(tick); ti == nil {
				delete(c.tickLeaf, tick)
			} else {
				c.buf = appendTickChunk(c.buf[:0], tick, ti)
				c.tickLeaf[tick] = merkle.HashLeaf(c.buf)
			}
		}
		for id := range d.Positions {
			if pos := p.Position(id); pos == nil {
				delete(c.posLeaf, id)
			} else {
				c.buf = appendPositionChunk(c.buf[:0], pos)
				c.posLeaf[id] = merkle.HashLeaf(c.buf)
			}
		}
	}

	c.hashes = append(c.hashes[:0], c.headerLeaf)
	for _, tick := range ticks {
		c.hashes = append(c.hashes, c.tickLeaf[tick])
	}
	for _, id := range positions {
		c.hashes = append(c.hashes, c.posLeaf[id])
	}
	c.tickKeys = append(c.tickKeys[:0], ticks...)
	c.posKeys = append(c.posKeys[:0], positions...)
	if c.tree == nil {
		c.tree = merkle.NewUpdatable(c.hashes)
	} else {
		c.tree.Reset(c.hashes)
	}
}
