package engine

import (
	"encoding/binary"

	"ammboost/internal/amm"
	"ammboost/internal/crypto/merkle"
	"ammboost/internal/u256"
)

// A pool's state commitment is a Merkle tree over fixed-layout chunks:
// leaf 0 is the header chunk (pool identity, price, in-range liquidity,
// global fee accumulators, reserves), followed by one leaf per
// initialized tick in ascending tick order, then one leaf per position in
// ascending position-ID order. Chunking is what makes the commitment
// incrementally updatable: a swap that crosses two ticks re-hashes the
// header chunk and two tick leaves and recomputes only the tree paths
// above them (see poolCommit), instead of re-hashing the whole pool.
// Each chunk carries a one-byte kind tag and length-prefixed strings so
// no two distinct states serialize identically.

func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func appendI32(b []byte, v int32) []byte { return appendU32(b, uint32(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendU256(b []byte, v u256.Int) []byte {
	bs := v.Bytes32()
	return append(b, bs[:]...)
}

// appendHeaderChunk serializes the pool-level fields into b.
func appendHeaderChunk(b []byte, poolID string, p *amm.Pool) []byte {
	b = append(b, 'H')
	b = appendStr(b, poolID)
	b = appendStr(b, p.Token0)
	b = appendStr(b, p.Token1)
	b = appendU32(b, p.FeePips)
	b = appendI32(b, p.TickSpacing)
	b = appendU256(b, p.SqrtPriceX96)
	b = appendI32(b, p.Tick)
	b = appendU256(b, p.Liquidity)
	b = appendU256(b, p.FeeGrowthGlobal0X128)
	b = appendU256(b, p.FeeGrowthGlobal1X128)
	b = appendU256(b, p.Reserve0)
	b = appendU256(b, p.Reserve1)
	return b
}

// appendTickChunk serializes one initialized tick's accounting into b.
func appendTickChunk(b []byte, tick int32, ti *amm.TickInfo) []byte {
	b = append(b, 'T')
	b = appendI32(b, tick)
	b = appendU256(b, ti.LiquidityGross)
	b = appendU256(b, ti.LiquidityNetAdd)
	b = appendU256(b, ti.LiquidityNetSub)
	b = appendU256(b, ti.FeeGrowthOutside0X128)
	b = appendU256(b, ti.FeeGrowthOutside1X128)
	return b
}

// appendPositionChunk serializes one position into b.
func appendPositionChunk(b []byte, pos *amm.Position) []byte {
	b = append(b, 'P')
	b = appendStr(b, pos.ID)
	b = appendStr(b, pos.Owner)
	b = appendI32(b, pos.TickLower)
	b = appendI32(b, pos.TickUpper)
	b = appendU256(b, pos.Liquidity)
	b = appendU256(b, pos.FeeGrowthInside0LastX128)
	b = appendU256(b, pos.FeeGrowthInside1LastX128)
	b = appendU256(b, pos.TokensOwed0)
	b = appendU256(b, pos.TokensOwed1)
	return b
}

// StateRoot deterministically hashes a pool's full state from scratch:
// the header chunk, every initialized tick, and every position, folded
// into the chunked Merkle layout described above. It is the reference
// implementation the incremental commitment cache (poolCommit) is
// differentially tested against: both must produce bit-identical roots
// for the same state. Two pools that executed the same transaction
// sequence produce the same root regardless of map iteration order or
// which shard ran them.
func StateRoot(poolID string, p *amm.Pool) [32]byte {
	ticks := p.TickKeys()
	positions := p.PositionKeys()
	hashes := make([][32]byte, 0, 1+len(ticks)+len(positions))
	buf := make([]byte, 0, 512)

	buf = appendHeaderChunk(buf, poolID, p)
	hashes = append(hashes, merkle.HashLeaf(buf))
	for _, tick := range ticks {
		buf = appendTickChunk(buf[:0], tick, p.TickInfoAt(tick))
		hashes = append(hashes, merkle.HashLeaf(buf))
	}
	for _, id := range positions {
		buf = appendPositionChunk(buf[:0], p.Position(id))
		hashes = append(hashes, merkle.HashLeaf(buf))
	}
	return merkle.RootFromLeafHashes(hashes)
}

// FoldRoots builds the Merkle tree over per-pool roots in the given order
// and returns its root. The engine always passes roots in canonical pool
// order, making the fold independent of the shard layout. The fold uses
// merkle's fixed-width path: no per-root re-slicing through [][]byte and
// a single scratch allocation for any N.
func FoldRoots(roots [][32]byte) [32]byte {
	return merkle.New32(roots)
}
