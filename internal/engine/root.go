package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"ammboost/internal/amm"
	"ammboost/internal/crypto/merkle"
	"ammboost/internal/u256"
)

// StateRoot deterministically hashes a pool's full state: price, in-range
// liquidity, global fee accumulators, reserves, every initialized tick's
// accounting, and every position (sorted by ID). Two pools that executed
// the same transaction sequence produce the same root regardless of map
// iteration order or which shard ran them.
func StateRoot(poolID string, p *amm.Pool) [32]byte {
	h := sha256.New()
	var buf [8]byte
	put32 := func(v u256.Int) {
		b := v.Bytes32()
		h.Write(b[:])
	}
	putI32 := func(v int32) {
		binary.BigEndian.PutUint32(buf[:4], uint32(v))
		h.Write(buf[:4])
	}

	h.Write([]byte(poolID))
	h.Write([]byte(p.Token0))
	h.Write([]byte(p.Token1))
	binary.BigEndian.PutUint32(buf[:4], p.FeePips)
	h.Write(buf[:4])
	putI32(p.TickSpacing)
	put32(p.SqrtPriceX96)
	putI32(p.Tick)
	put32(p.Liquidity)
	put32(p.FeeGrowthGlobal0X128)
	put32(p.FeeGrowthGlobal1X128)
	put32(p.Reserve0)
	put32(p.Reserve1)

	for _, tick := range p.Ticks() {
		ti := p.TickInfoAt(tick)
		if ti == nil {
			continue
		}
		putI32(tick)
		put32(ti.LiquidityGross)
		put32(ti.LiquidityNetAdd)
		put32(ti.LiquidityNetSub)
		put32(ti.FeeGrowthOutside0X128)
		put32(ti.FeeGrowthOutside1X128)
	}

	positions := p.Positions()
	sort.Slice(positions, func(i, j int) bool { return positions[i].ID < positions[j].ID })
	for _, pos := range positions {
		h.Write([]byte(pos.ID))
		h.Write([]byte(pos.Owner))
		putI32(pos.TickLower)
		putI32(pos.TickUpper)
		put32(pos.Liquidity)
		put32(pos.FeeGrowthInside0LastX128)
		put32(pos.FeeGrowthInside1LastX128)
		put32(pos.TokensOwed0)
		put32(pos.TokensOwed1)
	}

	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// FoldRoots builds the Merkle tree over per-pool roots in the given order
// and returns its root. The engine always passes roots in canonical pool
// order, making the fold independent of the shard layout.
func FoldRoots(roots [][32]byte) [32]byte {
	leaves := make([][]byte, len(roots))
	for i := range roots {
		leaves[i] = roots[i][:]
	}
	return merkle.New(leaves).Root()
}
