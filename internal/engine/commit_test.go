package engine

import (
	"fmt"
	"testing"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
	"ammboost/internal/workload"
)

// diffRun drives one engine through a fixed multi-epoch schedule and
// returns everything the differential comparison needs: per-epoch summary
// roots, per-epoch payload digests (canonical pool order), and the final
// per-pool state roots. Epoch 2 carries zero transactions and no
// deposits, so with lazy snapshots no pool is ever touched in it; epochs
// 1 and 3 run Zipf traffic, which leaves the cold tail of pools idle too.
func diffRun(t *testing.T, seed int64, pools, shards int, full bool, batches [][]*summary.Tx, users []string) (summaryRoots [][32]byte, digests [][][32]byte, poolRoots [][32]byte) {
	t.Helper()
	eng, err := New(Config{Seed: seed, NumPools: pools, NumShards: shards, FullRecompute: full})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dep := u256.FromUint64(1 << 40)
	rounds := len(batches) / 2 // epochs 1 and 3 split the batches
	for e := uint64(1); e <= 3; e++ {
		var deps map[string]map[string]summary.Deposit
		if e != 2 {
			deps = UniformDeposits(eng.PoolIDs(), users, dep, dep)
		}
		if err := eng.BeginEpoch(e, deps); err != nil {
			t.Fatalf("BeginEpoch %d: %v", e, err)
		}
		if e != 2 {
			half := 0
			if e == 3 {
				half = rounds
			}
			for r := 0; r < rounds; r++ {
				if _, err := eng.ExecuteRound(batches[half+r], uint64(r+1)); err != nil {
					t.Fatalf("ExecuteRound: %v", err)
				}
			}
		}
		res, err := eng.EndEpoch([]byte("diff-next-key"))
		if err != nil {
			t.Fatalf("EndEpoch %d: %v", e, err)
		}
		summaryRoots = append(summaryRoots, res.SummaryRoot)
		ds := make([][32]byte, len(res.Payloads))
		for i, p := range res.Payloads {
			ds[i] = p.Digest()
		}
		digests = append(digests, ds)
	}
	return summaryRoots, digests, eng.StateRoots()
}

// TestIncrementalMatchesFullReference is the PR's differential pin: for
// seeds {1, 42, 1337} × shard counts {1, 4, 16}, the incremental
// commitment path (dirty tracking + cached chunk hashes + lazy
// snapshots) must reproduce the retained full-rehash reference mode bit
// for bit — epoch summary roots, every pool's state root, and every sync
// payload digest — including after an epoch with zero activity anywhere.
func TestIncrementalMatchesFullReference(t *testing.T) {
	const pools = 32
	for _, seed := range []int64{1, 42, 1337} {
		wcfg := workload.DefaultMultiConfig(seed, pools)
		gen := workload.NewMulti(wcfg)
		batches := make([][]*summary.Tx, 6)
		for i := range batches {
			batch := make([]*summary.Tx, 150)
			for j := range batch {
				batch[j] = gen.Next()
			}
			batches[i] = batch
		}
		users := gen.Users()

		refSummary, refDigests, refPools := diffRun(t, seed, pools, 1, true, batches, users)
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				gotSummary, gotDigests, gotPools := diffRun(t, seed, pools, shards, false, batches, users)
				for e := range refSummary {
					if gotSummary[e] != refSummary[e] {
						t.Errorf("epoch %d: incremental summary root diverged from full reference", e+1)
					}
					for i := range refDigests[e] {
						if gotDigests[e][i] != refDigests[e][i] {
							t.Errorf("epoch %d pool %d: payload digest diverged", e+1, i)
						}
					}
				}
				for i := range refPools {
					if gotPools[i] != refPools[i] {
						t.Errorf("pool %d: final state root diverged", i)
					}
				}
			})
		}
	}
}

// TestCachedRootsMatchScratchRecompute checks the cache against the
// stateless reference directly: after a run, every cached root equals
// StateRoot recomputed from the pool's live state.
func TestCachedRootsMatchScratchRecompute(t *testing.T) {
	const pools = 16
	eng, err := New(Config{Seed: 7, NumPools: pools, NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultMultiConfig(7, pools)
	wcfg.PoolIDs = eng.PoolIDs()
	gen := workload.NewMulti(wcfg)
	dep := u256.FromUint64(1 << 40)
	for e := uint64(1); e <= 3; e++ {
		if err := eng.BeginEpoch(e, UniformDeposits(eng.PoolIDs(), gen.Users(), dep, dep)); err != nil {
			t.Fatal(err)
		}
		for r := uint64(1); r <= 4; r++ {
			batch := make([]*summary.Tx, 100)
			for i := range batch {
				batch[i] = gen.Next()
			}
			if _, err := eng.ExecuteRound(batch, r); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.EndEpoch([]byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range res.PoolIDs {
			if want := StateRoot(id, eng.Pool(id)); res.PoolRoots[i] != want {
				t.Fatalf("epoch %d: cached root of %s diverged from scratch recompute", e, id)
			}
		}
	}
}

// TestUntouchedPoolKeepsCachedRoot pins the O(1) idle-pool property: a
// pool with no traffic across epochs reports the identical root without
// its state advancing.
func TestUntouchedPoolKeepsCachedRoot(t *testing.T) {
	eng, err := New(Config{NumPools: 4, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := eng.StateRoots()
	active := eng.PoolIDs()[0]
	for e := uint64(1); e <= 3; e++ {
		if err := eng.BeginEpoch(e, nil); err != nil {
			t.Fatal(err)
		}
		if err := eng.AddDeposit(active, "u", u256.FromUint64(1<<30), u256.FromUint64(1<<30)); err != nil {
			t.Fatal(err)
		}
		tx := &summary.Tx{ID: fmt.Sprintf("s%d", e), Kind: gasmodel.KindSwap, User: "u", PoolID: active,
			ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(1000)}
		if _, err := eng.ExecuteRound([]*summary.Tx{tx}, 1); err != nil {
			t.Fatal(err)
		}
		res, err := eng.EndEpoch(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range res.PoolIDs {
			if id == active {
				if res.PoolRoots[i] == before[i] {
					t.Errorf("epoch %d: active pool root did not change", e)
				}
				continue
			}
			if res.PoolRoots[i] != before[i] {
				t.Errorf("epoch %d: idle pool %s root changed", e, id)
			}
		}
	}
}
