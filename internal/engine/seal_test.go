package engine

import (
	"fmt"
	"testing"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/trace"
	"ammboost/internal/u256"
	"ammboost/internal/workload"
)

// sealRun drives one engine through epochs of identical Zipf traffic. In
// pipelined mode each epoch is sealed and finalized on a separate
// goroutine while the next epoch begins executing against the advanced
// canonical state — exactly the overlap the lifecycle pipeline creates —
// with the previous epoch's Finalize joined only when the next epoch
// ends (a depth-2 window). Returns the per-epoch summary roots.
func sealRun(t *testing.T, pipelined bool, seed int64, pools, shards, epochs, rounds, txPerRound int) [][32]byte {
	t.Helper()
	eng, err := New(Config{Seed: seed, NumPools: pools, NumShards: shards})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wcfg := workload.DefaultMultiConfig(seed, pools)
	wcfg.PoolIDs = eng.PoolIDs()
	gen := workload.NewMulti(wcfg)
	dep := u256.FromUint64(1 << 40)

	roots := make([][32]byte, epochs)
	var pending *SealedEpoch
	var pendingIdx int
	resCh := make(chan *EpochResult, 1)
	joinPending := func() {
		if pending == nil {
			return
		}
		roots[pendingIdx] = (<-resCh).SummaryRoot
		pending = nil
	}
	for e := 1; e <= epochs; e++ {
		deps := UniformDeposits(eng.PoolIDs(), gen.Users(), dep, dep)
		if err := eng.BeginEpoch(uint64(e), deps); err != nil {
			t.Fatalf("BeginEpoch: %v", err)
		}
		for r := 1; r <= rounds; r++ {
			batch := make([]*summary.Tx, txPerRound)
			for i := range batch {
				batch[i] = gen.Next()
			}
			if _, err := eng.ExecuteRound(batch, uint64(r)); err != nil {
				t.Fatalf("ExecuteRound: %v", err)
			}
		}
		if !pipelined {
			res, err := eng.EndEpoch([]byte("next-key"))
			if err != nil {
				t.Fatalf("EndEpoch: %v", err)
			}
			roots[e-1] = res.SummaryRoot
			continue
		}
		joinPending() // stage capacity 1: finalizations stay sequential
		sealed, err := eng.SealEpoch([]byte("next-key"))
		if err != nil {
			t.Fatalf("SealEpoch: %v", err)
		}
		pending, pendingIdx = sealed, e-1
		go func() { resCh <- sealed.Finalize() }()
	}
	joinPending()
	return roots
}

// TestSealFinalizeMatchesEndEpoch pins the pipelined engine hand-off:
// finalizing sealed epochs concurrently with the next epoch's execution
// yields bit-identical summary roots to the synchronous EndEpoch path,
// across seeds and shard counts. Run with -race this also proves the
// sealed state is genuinely frozen (no writes race the finalizer).
func TestSealFinalizeMatchesEndEpoch(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		for _, shards := range []int{1, 4} {
			base := sealRun(t, false, seed, 24, shards, 3, 4, 300)
			over := sealRun(t, true, seed, 24, shards, 3, 4, 300)
			for e := range base {
				if base[e] != over[e] {
					t.Errorf("seed=%d shards=%d: epoch %d root diverged between EndEpoch and Seal+Finalize",
						seed, shards, e+1)
				}
			}
		}
	}
}

// TestSealEpochAdvancesCanonicalState checks that sealing (without
// finalizing) already advances the canonical pools: the next epoch's
// lazily created executors must snapshot the sealed epoch's final,
// settled state.
func TestSealEpochAdvancesCanonicalState(t *testing.T) {
	eng, err := New(Config{Seed: 7, NumPools: 2, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	pid := eng.PoolIDs()[0]
	before := eng.Pool(pid).Reserve0
	if err := eng.BeginEpoch(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddDeposit(pid, "u", u256.FromUint64(1<<40), u256.FromUint64(1<<40)); err != nil {
		t.Fatal(err)
	}
	tx := &summary.Tx{ID: "s1", Kind: gasmodel.KindSwap, User: "u", PoolID: pid,
		ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(1_000_000)}
	if _, err := eng.ExecuteRound([]*summary.Tx{tx}, 1); err != nil {
		t.Fatal(err)
	}
	sealed, err := eng.SealEpoch([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pool(pid).Reserve0.Eq(before) {
		t.Error("canonical reserves unchanged after seal; want the epoch's trades applied")
	}
	if !eng.Pool(pid).Dirty() {
		// TakeDirty detached the tracking: the sealed pool reads clean.
	} else {
		t.Error("sealed pool still reports dirty state; tracking should be detached")
	}
	// Lifecycle guards: sealing twice, or ending after a seal, is an error.
	if _, err := eng.SealEpoch([]byte("k")); err == nil {
		t.Error("second SealEpoch should fail (no epoch in progress)")
	}
	if _, err := eng.EndEpoch([]byte("k")); err == nil {
		t.Error("EndEpoch after SealEpoch should fail (no epoch in progress)")
	}
	// The next epoch opens against the sealed state while the finalize
	// is still outstanding.
	if err := eng.BeginEpoch(2, nil); err != nil {
		t.Fatalf("BeginEpoch after seal: %v", err)
	}
	res := sealed.Finalize()
	if res.Epoch != 1 || len(res.Payloads) != 2 {
		t.Fatalf("finalized epoch %d with %d payloads, want epoch 1 with 2", res.Epoch, len(res.Payloads))
	}
	if _, err := eng.EndEpoch([]byte("k2")); err != nil {
		t.Fatalf("EndEpoch for epoch 2: %v", err)
	}
}

// TestShardStatsAccounting pins the traced execute path: per-shard stats
// captured at seal cover every accepted transaction exactly once, gas
// follows the gas model, pool counts match active executors, and one
// execute-shard span per working shard lands in the tracer — while an
// untraced engine reports nil stats.
func TestShardStatsAccounting(t *testing.T) {
	tr := trace.New(8)
	eng, err := New(Config{NumPools: 8, NumShards: 4, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	ids := eng.PoolIDs()
	dep := u256.FromUint64(1 << 40)
	deps := UniformDeposits(ids, []string{"trader"}, dep, dep)
	if err := eng.BeginEpoch(1, deps); err != nil {
		t.Fatal(err)
	}
	var batch []*summary.Tx
	for i := 0; i < 40; i++ {
		batch = append(batch, &summary.Tx{
			ID: fmt.Sprintf("swap-%02d", i), Kind: gasmodel.KindSwap, User: "trader",
			PoolID: ids[i%len(ids)], ZeroForOne: i%2 == 0, ExactIn: true,
			Amount: u256.FromUint64(5_000),
		})
	}
	res, err := eng.ExecuteRound(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := eng.SealEpoch(nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := sealed.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats len = %d, want 4", len(stats))
	}
	totTxs, totPools := 0, 0
	var totGas uint64
	for s, st := range stats {
		if st.Shard != s {
			t.Fatalf("stats[%d].Shard = %d", s, st.Shard)
		}
		totTxs += st.Txs
		totGas += st.Gas
		totPools += st.Pools
	}
	if totTxs != len(res.Included) {
		t.Fatalf("stats cover %d txs, engine accepted %d", totTxs, len(res.Included))
	}
	if want := uint64(totTxs) * gasmodel.UniswapOpGas(gasmodel.KindSwap); totGas != want {
		t.Fatalf("stats gas = %d, want %d", totGas, want)
	}
	if totPools != len(ids) {
		t.Fatalf("stats cover %d active pools, want %d", totPools, len(ids))
	}
	var spans int
	for _, rec := range tr.Snapshot(0) {
		if rec.Stage == trace.StageExecute && rec.Epoch == 1 {
			spans++
			if rec.Txs != stats[rec.Shard].Txs || rec.Gas != stats[rec.Shard].Gas {
				t.Fatalf("span for shard %d disagrees with stats: %+v vs %+v",
					rec.Shard, rec, stats[rec.Shard])
			}
		}
	}
	working := 0
	for _, st := range stats {
		if st.Txs > 0 || st.Busy > 0 {
			working++
		}
	}
	if spans != working {
		t.Fatalf("%d execute-shard spans for %d working shards", spans, working)
	}
	sealed.Finalize()

	// Untraced engines report nil stats and skip all accounting.
	plain, err := New(Config{NumPools: 2, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.BeginEpoch(1, nil); err != nil {
		t.Fatal(err)
	}
	ps, err := plain.SealEpoch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.ShardStats() != nil {
		t.Fatal("untraced engine returned shard stats")
	}
	ps.Finalize()
}
