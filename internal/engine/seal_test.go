package engine

import (
	"testing"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
	"ammboost/internal/workload"
)

// sealRun drives one engine through epochs of identical Zipf traffic. In
// pipelined mode each epoch is sealed and finalized on a separate
// goroutine while the next epoch begins executing against the advanced
// canonical state — exactly the overlap the lifecycle pipeline creates —
// with the previous epoch's Finalize joined only when the next epoch
// ends (a depth-2 window). Returns the per-epoch summary roots.
func sealRun(t *testing.T, pipelined bool, seed int64, pools, shards, epochs, rounds, txPerRound int) [][32]byte {
	t.Helper()
	eng, err := New(Config{Seed: seed, NumPools: pools, NumShards: shards})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wcfg := workload.DefaultMultiConfig(seed, pools)
	wcfg.PoolIDs = eng.PoolIDs()
	gen := workload.NewMulti(wcfg)
	dep := u256.FromUint64(1 << 40)

	roots := make([][32]byte, epochs)
	var pending *SealedEpoch
	var pendingIdx int
	resCh := make(chan *EpochResult, 1)
	joinPending := func() {
		if pending == nil {
			return
		}
		roots[pendingIdx] = (<-resCh).SummaryRoot
		pending = nil
	}
	for e := 1; e <= epochs; e++ {
		deps := UniformDeposits(eng.PoolIDs(), gen.Users(), dep, dep)
		if err := eng.BeginEpoch(uint64(e), deps); err != nil {
			t.Fatalf("BeginEpoch: %v", err)
		}
		for r := 1; r <= rounds; r++ {
			batch := make([]*summary.Tx, txPerRound)
			for i := range batch {
				batch[i] = gen.Next()
			}
			if _, err := eng.ExecuteRound(batch, uint64(r)); err != nil {
				t.Fatalf("ExecuteRound: %v", err)
			}
		}
		if !pipelined {
			res, err := eng.EndEpoch([]byte("next-key"))
			if err != nil {
				t.Fatalf("EndEpoch: %v", err)
			}
			roots[e-1] = res.SummaryRoot
			continue
		}
		joinPending() // stage capacity 1: finalizations stay sequential
		sealed, err := eng.SealEpoch([]byte("next-key"))
		if err != nil {
			t.Fatalf("SealEpoch: %v", err)
		}
		pending, pendingIdx = sealed, e-1
		go func() { resCh <- sealed.Finalize() }()
	}
	joinPending()
	return roots
}

// TestSealFinalizeMatchesEndEpoch pins the pipelined engine hand-off:
// finalizing sealed epochs concurrently with the next epoch's execution
// yields bit-identical summary roots to the synchronous EndEpoch path,
// across seeds and shard counts. Run with -race this also proves the
// sealed state is genuinely frozen (no writes race the finalizer).
func TestSealFinalizeMatchesEndEpoch(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		for _, shards := range []int{1, 4} {
			base := sealRun(t, false, seed, 24, shards, 3, 4, 300)
			over := sealRun(t, true, seed, 24, shards, 3, 4, 300)
			for e := range base {
				if base[e] != over[e] {
					t.Errorf("seed=%d shards=%d: epoch %d root diverged between EndEpoch and Seal+Finalize",
						seed, shards, e+1)
				}
			}
		}
	}
}

// TestSealEpochAdvancesCanonicalState checks that sealing (without
// finalizing) already advances the canonical pools: the next epoch's
// lazily created executors must snapshot the sealed epoch's final,
// settled state.
func TestSealEpochAdvancesCanonicalState(t *testing.T) {
	eng, err := New(Config{Seed: 7, NumPools: 2, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	pid := eng.PoolIDs()[0]
	before := eng.Pool(pid).Reserve0
	if err := eng.BeginEpoch(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddDeposit(pid, "u", u256.FromUint64(1<<40), u256.FromUint64(1<<40)); err != nil {
		t.Fatal(err)
	}
	tx := &summary.Tx{ID: "s1", Kind: gasmodel.KindSwap, User: "u", PoolID: pid,
		ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(1_000_000)}
	if _, err := eng.ExecuteRound([]*summary.Tx{tx}, 1); err != nil {
		t.Fatal(err)
	}
	sealed, err := eng.SealEpoch([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pool(pid).Reserve0.Eq(before) {
		t.Error("canonical reserves unchanged after seal; want the epoch's trades applied")
	}
	if !eng.Pool(pid).Dirty() {
		// TakeDirty detached the tracking: the sealed pool reads clean.
	} else {
		t.Error("sealed pool still reports dirty state; tracking should be detached")
	}
	// Lifecycle guards: sealing twice, or ending after a seal, is an error.
	if _, err := eng.SealEpoch([]byte("k")); err == nil {
		t.Error("second SealEpoch should fail (no epoch in progress)")
	}
	if _, err := eng.EndEpoch([]byte("k")); err == nil {
		t.Error("EndEpoch after SealEpoch should fail (no epoch in progress)")
	}
	// The next epoch opens against the sealed state while the finalize
	// is still outstanding.
	if err := eng.BeginEpoch(2, nil); err != nil {
		t.Fatalf("BeginEpoch after seal: %v", err)
	}
	res := sealed.Finalize()
	if res.Epoch != 1 || len(res.Payloads) != 2 {
		t.Fatalf("finalized epoch %d with %d payloads, want epoch 1 with 2", res.Epoch, len(res.Payloads))
	}
	if _, err := eng.EndEpoch([]byte("k2")); err != nil {
		t.Fatalf("EndEpoch for epoch 2: %v", err)
	}
}
