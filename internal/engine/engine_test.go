package engine

import (
	"testing"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
	"ammboost/internal/workload"
)

// runEpochs drives an engine through epochs of multi-pool Zipf traffic
// and returns the per-epoch summary roots plus the final pool roots.
func runEpochs(t *testing.T, pools, shards, epochs, roundsPerEpoch, txPerRound int, seed int64) ([][32]byte, [][32]byte, int) {
	t.Helper()
	eng, err := New(Config{Seed: seed, NumPools: pools, NumShards: shards})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if eng.NumShards() != shards {
		t.Fatalf("NumShards = %d, want %d", eng.NumShards(), shards)
	}
	wcfg := workload.DefaultMultiConfig(seed, pools)
	wcfg.PoolIDs = eng.PoolIDs()
	gen := workload.NewMulti(wcfg)
	dep := u256.FromUint64(1 << 40)

	var summaryRoots [][32]byte
	rejected := 0
	for e := uint64(1); e <= uint64(epochs); e++ {
		deps := UniformDeposits(eng.PoolIDs(), gen.Users(), dep, dep)
		if err := eng.BeginEpoch(e, deps); err != nil {
			t.Fatalf("BeginEpoch: %v", err)
		}
		for r := uint64(1); r <= uint64(roundsPerEpoch); r++ {
			batch := make([]*summary.Tx, txPerRound)
			for i := range batch {
				batch[i] = gen.Next()
			}
			res, err := eng.ExecuteRound(batch, r)
			if err != nil {
				t.Fatalf("ExecuteRound: %v", err)
			}
			rejected += res.Rejected
			if len(res.Included)+res.Rejected != len(batch) {
				t.Fatalf("round %d: included %d + rejected %d != batch %d",
					r, len(res.Included), res.Rejected, len(batch))
			}
		}
		res, err := eng.EndEpoch([]byte("next-key"))
		if err != nil {
			t.Fatalf("EndEpoch: %v", err)
		}
		if len(res.Payloads) != pools || len(res.PoolRoots) != pools {
			t.Fatalf("epoch result covers %d payloads / %d roots, want %d",
				len(res.Payloads), len(res.PoolRoots), pools)
		}
		for i, p := range res.Payloads {
			if p.PoolID != res.PoolIDs[i] {
				t.Fatalf("payload %d tagged %q, want %q", i, p.PoolID, res.PoolIDs[i])
			}
		}
		summaryRoots = append(summaryRoots, res.SummaryRoot)
	}
	return summaryRoots, eng.StateRoots(), rejected
}

// TestDeterminismAcrossShardCounts is the acceptance check: 64 pools,
// fixed seed, shard counts {1, 4, 16} — bit-identical per-pool state
// roots and epoch summary roots.
func TestDeterminismAcrossShardCounts(t *testing.T) {
	const pools, epochs, rounds, tpr = 64, 3, 5, 200
	baseSummary, basePools, baseRejected := runEpochs(t, pools, 1, epochs, rounds, tpr, 42)
	for _, shards := range []int{4, 16} {
		gotSummary, gotPools, gotRejected := runEpochs(t, pools, shards, epochs, rounds, tpr, 42)
		for e := range baseSummary {
			if gotSummary[e] != baseSummary[e] {
				t.Errorf("shards=%d: epoch %d summary root diverged", shards, e+1)
			}
		}
		for i := range basePools {
			if gotPools[i] != basePools[i] {
				t.Errorf("shards=%d: pool %d state root diverged", shards, i)
			}
		}
		if gotRejected != baseRejected {
			t.Errorf("shards=%d: rejected %d, want %d", shards, gotRejected, baseRejected)
		}
	}
}

// TestDifferentSeedsDiverge guards against a degenerate root function.
func TestDifferentSeedsDiverge(t *testing.T) {
	a, _, _ := runEpochs(t, 8, 2, 1, 3, 100, 1)
	b, _, _ := runEpochs(t, 8, 2, 1, 3, 100, 2)
	if a[0] == b[0] {
		t.Fatal("different seeds produced identical summary roots")
	}
}

// TestShardPartitionCoversAllPools: every pool lands on exactly one shard.
func TestShardPartitionCoversAllPools(t *testing.T) {
	eng, err := New(Config{NumPools: 64, NumShards: 7})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for s, ids := range eng.shardPools {
		for _, id := range ids {
			seen[id]++
			if got := ShardOf(id, 7); got != s {
				t.Errorf("pool %s on shard %d, ShardOf says %d", id, s, got)
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("partition covers %d pools, want 64", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("pool %s assigned %d times", id, n)
		}
	}
}

// TestMidEpochDeposit: a user with no snapshot deposit is rejected until
// the mid-epoch credit lands on the right pool.
func TestMidEpochDeposit(t *testing.T) {
	eng, err := New(Config{NumPools: 2, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	pid := eng.PoolIDs()[0]
	if err := eng.BeginEpoch(1, nil); err != nil {
		t.Fatal(err)
	}
	tx := &summary.Tx{ID: "s1", Kind: gasmodel.KindSwap, User: "u", PoolID: pid,
		ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(1000)}
	res, err := eng.ExecuteRound([]*summary.Tx{tx}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Included) != 0 || res.Rejected != 1 {
		t.Fatalf("unfunded swap included=%d rejected=%d", len(res.Included), res.Rejected)
	}
	if err := eng.AddDeposit(pid, "u", u256.FromUint64(1<<20), u256.FromUint64(1<<20)); err != nil {
		t.Fatal(err)
	}
	tx2 := &summary.Tx{ID: "s2", Kind: gasmodel.KindSwap, User: "u", PoolID: pid,
		ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(1000)}
	res, err = eng.ExecuteRound([]*summary.Tx{tx2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Included) != 1 {
		t.Fatalf("funded swap rejected")
	}
	if _, err := eng.EndEpoch(nil); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownPoolRejected: transactions routed to unregistered pools are
// counted as rejected, never executed.
func TestUnknownPoolRejected(t *testing.T) {
	eng, err := New(Config{NumPools: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BeginEpoch(1, nil); err != nil {
		t.Fatal(err)
	}
	tx := &summary.Tx{ID: "x", Kind: gasmodel.KindSwap, User: "u", PoolID: "pool-9999",
		ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(1)}
	res, err := eng.ExecuteRound([]*summary.Tx{tx}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 || len(res.Included) != 0 {
		t.Fatalf("unknown pool: included=%d rejected=%d", len(res.Included), res.Rejected)
	}
}

// TestLifecycleGuards: rounds need an epoch; double BeginEpoch fails.
func TestLifecycleGuards(t *testing.T) {
	eng, err := New(Config{NumPools: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecuteRound(nil, 1); err == nil {
		t.Error("ExecuteRound before BeginEpoch should fail")
	}
	if _, err := eng.EndEpoch(nil); err == nil {
		t.Error("EndEpoch before BeginEpoch should fail")
	}
	if err := eng.BeginEpoch(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.BeginEpoch(2, nil); err == nil {
		t.Error("double BeginEpoch should fail")
	}
}
