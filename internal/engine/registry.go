// Package engine is ammBoost's multi-pool sharded execution engine: a
// registry of independent AMM pools partitioned across worker shards by
// pool-ID hash. Each shard executes its pools' per-round transaction
// batches sequentially (per-pool order is submission order) while shards
// run concurrently, and the per-pool state roots fold — in canonical pool
// order, independent of the shard layout — into a single epoch summary
// root via internal/crypto/merkle. A fixed seed therefore yields
// bit-identical pool roots and summary roots for any shard count.
package engine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"ammboost/internal/amm"
)

// Registry errors.
var (
	ErrDuplicatePool = errors.New("engine: pool already registered")
	ErrUnknownPool   = errors.New("engine: pool not registered")
)

// PoolName is the canonical identifier for the i-th pool of a deployment;
// workload generators and the engine must agree on it.
func PoolName(i int) string { return fmt.Sprintf("pool-%04d", i) }

// ShardOf assigns a pool to one of shards workers by FNV-1a hash of its
// ID. The assignment balances pools statistically and is stable for a
// given shard count; determinism of results does not depend on it because
// pools never share state.
func ShardOf(poolID string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(poolID))
	return int(h.Sum32() % uint32(shards))
}

// Registry is the ordered set of registered pools. The canonical order
// (sorted pool IDs) defines the leaf order of the epoch summary root.
type Registry struct {
	ids   []string // sorted
	pools map[string]*amm.Pool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{pools: make(map[string]*amm.Pool)}
}

// Register adds a pool under an ID.
func (r *Registry) Register(id string, pool *amm.Pool) error {
	if _, dup := r.pools[id]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicatePool, id)
	}
	r.pools[id] = pool
	i := sort.SearchStrings(r.ids, id)
	r.ids = append(r.ids, "")
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = id
	return nil
}

// Get returns the pool registered under id, or nil.
func (r *Registry) Get(id string) *amm.Pool { return r.pools[id] }

// IDs returns the registered pool IDs in canonical (sorted) order.
func (r *Registry) IDs() []string { return r.ids }

// NumPools returns the number of registered pools.
func (r *Registry) NumPools() int { return len(r.ids) }

// replace swaps the pool stored under an existing ID (epoch advancement).
func (r *Registry) replace(id string, pool *amm.Pool) {
	r.pools[id] = pool
}
