package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
)

func mkEntry(id string) Entry {
	tx := &summary.Tx{ID: id, Kind: gasmodel.KindSwap, User: "u"}
	return Entry{Tx: tx, Rc: &chain.Receipt{TxID: id}}
}

func TestDefaults(t *testing.T) {
	p := New(Policy{})
	pol := p.Policy()
	if pol.Capacity != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", pol.Capacity, DefaultCapacity)
	}
	if pol.SoftMark != DefaultCapacity {
		t.Fatalf("softmark = %d, want capacity (disabled)", pol.SoftMark)
	}
	if pol.Segments != DefaultSegments {
		t.Fatalf("segments = %d, want %d", pol.Segments, DefaultSegments)
	}
	if pol.MaxWait != DefaultMaxWait {
		t.Fatalf("maxwait = %v, want %v", pol.MaxWait, DefaultMaxWait)
	}
	// Explicit negative MaxWait survives (means "never block").
	if got := New(Policy{MaxWait: -1}).Policy().MaxWait; got != -1 {
		t.Fatalf("negative maxwait = %v, want -1", got)
	}
}

func TestAdmitDrainOrder(t *testing.T) {
	p := New(Policy{Segments: 4})
	for i := 0; i < 100; i++ {
		if err := p.AdmitOne(context.Background(), mkEntry(fmt.Sprintf("tx-%03d", i))); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if p.Len() != 100 {
		t.Fatalf("len = %d, want 100", p.Len())
	}
	got := p.Drain()
	if len(got) != 100 {
		t.Fatalf("drained %d, want 100", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("tx-%03d", i); e.Tx.ID != want {
			t.Fatalf("drain[%d] = %s, want %s", i, e.Tx.ID, want)
		}
		if i > 0 && got[i-1].Seq >= e.Seq {
			t.Fatalf("seq not strictly increasing at %d: %d then %d", i, got[i-1].Seq, e.Seq)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("len after drain = %d, want 0", p.Len())
	}
	if p.Drain() != nil {
		t.Fatal("second drain should be nil")
	}
}

// TestConcurrentAdmitSeqUnique hammers the pool from many producers and
// checks the drained union is a permutation with unique, gap-free
// sequence numbers in sorted order.
func TestConcurrentAdmitSeqUnique(t *testing.T) {
	p := New(Policy{Segments: 4})
	const producers, each = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := p.AdmitOne(context.Background(), mkEntry(fmt.Sprintf("p%d-%d", g, i))); err != nil {
					t.Errorf("admit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	got := p.Drain()
	if len(got) != producers*each {
		t.Fatalf("drained %d, want %d", len(got), producers*each)
	}
	seen := make(map[uint64]bool, len(got))
	ids := make(map[string]bool, len(got))
	for i, e := range got {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if ids[e.Tx.ID] {
			t.Fatalf("duplicate tx %s", e.Tx.ID)
		}
		ids[e.Tx.ID] = true
		if i > 0 && got[i-1].Seq >= e.Seq {
			t.Fatalf("order violated at %d", i)
		}
	}
	if st := p.Stats(); st.Admitted != producers*each || st.Peak != producers*each {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCapacityBlocksAndDrainWakes(t *testing.T) {
	p := New(Policy{Capacity: 4, MaxWait: 5 * time.Second})
	for i := 0; i < 4; i++ {
		if err := p.AdmitOne(context.Background(), mkEntry(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatalf("fill: %v", err)
		}
	}
	admitted := make(chan error, 1)
	go func() { admitted <- p.AdmitOne(context.Background(), mkEntry("blocked")) }()
	select {
	case err := <-admitted:
		t.Fatalf("admit should have blocked, returned %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if got := p.Drain(); len(got) != 4 {
		t.Fatalf("drained %d, want 4", len(got))
	}
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("post-drain admit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked producer never woke after drain")
	}
	if got := p.Drain(); len(got) != 1 || got[0].Tx.ID != "blocked" {
		t.Fatalf("second drain = %v", got)
	}
}

func TestMempoolFullTyped(t *testing.T) {
	p := New(Policy{Capacity: 2, MaxWait: time.Millisecond, RetryHint: 7 * time.Second})
	for i := 0; i < 2; i++ {
		if err := p.AdmitOne(context.Background(), mkEntry(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatalf("fill: %v", err)
		}
	}
	err := p.AdmitOne(context.Background(), mkEntry("over"))
	if !errors.Is(err, chain.ErrMempoolFull) {
		t.Fatalf("err = %v, want ErrMempoolFull", err)
	}
	var ae *chain.AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("err %T not an AdmissionError", err)
	}
	if ae.RetryAfter != 7*time.Second || ae.Capacity != 2 {
		t.Fatalf("admission error = %+v", ae)
	}
	if st := p.Stats(); st.RejFull != 1 {
		t.Fatalf("rejFull = %d, want 1", st.RejFull)
	}
	// MaxWait < 0: immediate rejection, no timer.
	p2 := New(Policy{Capacity: 1, MaxWait: -1})
	if err := p2.AdmitOne(context.Background(), mkEntry("x")); err != nil {
		t.Fatalf("fill: %v", err)
	}
	start := time.Now()
	if err := p2.AdmitOne(context.Background(), mkEntry("y")); !errors.Is(err, chain.ErrMempoolFull) {
		t.Fatalf("err = %v, want ErrMempoolFull", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("MaxWait<0 should reject immediately")
	}
}

func TestSoftMarkShedsBatch(t *testing.T) {
	p := New(Policy{Capacity: 100, SoftMark: 3})
	n, errs, batchErr := p.Admit(context.Background(), []Entry{mkEntry("a"), mkEntry("b"), mkEntry("c")})
	if n != 3 || errs != nil || batchErr != nil {
		t.Fatalf("under mark: n=%d errs=%v batchErr=%v", n, errs, batchErr)
	}
	n, _, batchErr = p.Admit(context.Background(), []Entry{mkEntry("d"), mkEntry("e")})
	if n != 0 || !errors.Is(batchErr, chain.ErrThrottled) {
		t.Fatalf("over mark: n=%d batchErr=%v, want ErrThrottled", n, batchErr)
	}
	if st := p.Stats(); st.Throttled != 2 {
		t.Fatalf("throttled = %d, want 2", st.Throttled)
	}
	p.Drain()
	if n, _, batchErr = p.Admit(context.Background(), []Entry{mkEntry("d")}); n != 1 || batchErr != nil {
		t.Fatalf("post-drain: n=%d err=%v", n, batchErr)
	}
}

func TestBatchPartialAccept(t *testing.T) {
	p := New(Policy{Capacity: 3, MaxWait: -1})
	batch := []Entry{mkEntry("a"), mkEntry("b"), mkEntry("c"), mkEntry("d"), mkEntry("e")}
	n, errs, batchErr := p.Admit(context.Background(), batch)
	if batchErr != nil {
		t.Fatalf("batchErr = %v", batchErr)
	}
	if n != 3 {
		t.Fatalf("accepted %d, want 3", n)
	}
	if len(errs) != 5 || errs[0] != nil || errs[2] != nil {
		t.Fatalf("errs = %v", errs)
	}
	for i := 3; i < 5; i++ {
		if !errors.Is(errs[i], chain.ErrMempoolFull) {
			t.Fatalf("errs[%d] = %v, want ErrMempoolFull", i, errs[i])
		}
	}
	if got := p.Drain(); len(got) != 3 || got[0].Tx.ID != "a" || got[2].Tx.ID != "c" {
		t.Fatalf("drain = %v", got)
	}
}

func TestCancelMidBackpressure(t *testing.T) {
	p := New(Policy{Capacity: 1, MaxWait: time.Minute})
	if err := p.AdmitOne(context.Background(), mkEntry("fill")); err != nil {
		t.Fatalf("fill: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- p.AdmitOne(ctx, mkEntry("waiting")) }()
	select {
	case err := <-res:
		t.Fatalf("should block, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, chain.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock producer")
	}
	if st := p.Stats(); st.Canceled != 1 {
		t.Fatalf("canceled = %d, want 1", st.Canceled)
	}
	// Pre-canceled context refuses the whole batch up front.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, batchErr := p.Admit(ctx2, []Entry{mkEntry("x")}); !errors.Is(batchErr, chain.ErrCanceled) {
		t.Fatalf("batchErr = %v, want ErrCanceled", batchErr)
	}
}

func TestCloseWakesAndRejects(t *testing.T) {
	p := New(Policy{Capacity: 1, MaxWait: time.Minute})
	if err := p.AdmitOne(context.Background(), mkEntry("fill")); err != nil {
		t.Fatalf("fill: %v", err)
	}
	res := make(chan error, 1)
	go func() { res <- p.AdmitOne(context.Background(), mkEntry("waiting")) }()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case err := <-res:
		if !errors.Is(err, chain.ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not wake blocked producer")
	}
	if err := p.AdmitOne(context.Background(), mkEntry("late")); !errors.Is(err, chain.ErrClosed) {
		t.Fatalf("late admit = %v, want ErrClosed", err)
	}
	// Buffered entries stay drainable after close.
	if got := p.Drain(); len(got) != 1 || got[0].Tx.ID != "fill" {
		t.Fatalf("drain after close = %v", got)
	}
}

func TestCloseIfEmpty(t *testing.T) {
	p := New(Policy{})
	if !p.CloseIfEmpty() {
		t.Fatal("empty pool should close")
	}
	if !p.CloseIfEmpty() {
		t.Fatal("closed pool stays closed")
	}
	p2 := New(Policy{})
	if err := p2.AdmitOne(context.Background(), mkEntry("x")); err != nil {
		t.Fatal(err)
	}
	if p2.CloseIfEmpty() {
		t.Fatal("non-empty pool must not close")
	}
	if p2.Closed() {
		t.Fatal("failed CloseIfEmpty must reopen")
	}
	p2.Drain()
	if !p2.CloseIfEmpty() {
		t.Fatal("drained pool should close")
	}
}

// TestCloseIfEmptyRace: producers racing CloseIfEmpty either get
// admitted (and are drained) or get ErrClosed — never stranded in a
// closed pool.
func TestCloseIfEmptyRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		p := New(Policy{MaxWait: -1})
		const producers = 4
		var admitted, rejected int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < producers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					err := p.AdmitOne(context.Background(), mkEntry(fmt.Sprintf("p%d-%d", g, i)))
					mu.Lock()
					if err == nil {
						admitted++
					} else if errors.Is(err, chain.ErrClosed) {
						rejected++
					} else {
						t.Errorf("unexpected err %v", err)
					}
					mu.Unlock()
				}
			}(g)
		}
		var drained int64
		for !p.CloseIfEmpty() {
			drained += int64(len(p.Drain()))
		}
		wg.Wait()
		drained += int64(len(p.Drain())) // sweep any post-close stragglers (there must be none)
		if drained != admitted {
			t.Fatalf("iter %d: drained %d != admitted %d (rejected %d)", iter, drained, admitted, rejected)
		}
	}
}

// TestConcurrentBatchSaturation: every submission under saturation
// resolves to admitted or a typed error; totals reconcile exactly.
func TestConcurrentBatchSaturation(t *testing.T) {
	p := New(Policy{Capacity: 64, MaxWait: time.Millisecond, RetryHint: time.Second})
	const producers, batches, batchLen = 8, 30, 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	var drained int64
	go func() { // slow consumer: keeps the pool saturated most of the time
		defer drainWG.Done()
		for {
			select {
			case <-stop:
				drained += int64(len(p.Drain()))
				return
			case <-time.After(2 * time.Millisecond):
				drained += int64(len(p.Drain()))
			}
		}
	}()
	var okTot, errTot int64
	var mu sync.Mutex
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]Entry, batchLen)
				for i := range batch {
					batch[i] = mkEntry(fmt.Sprintf("p%d-b%d-%d", g, b, i))
				}
				n, errs, batchErr := p.Admit(context.Background(), batch)
				mu.Lock()
				okTot += int64(n)
				if batchErr != nil {
					if !errors.Is(batchErr, chain.ErrThrottled) && !errors.Is(batchErr, chain.ErrMempoolFull) && !errors.Is(batchErr, chain.ErrCanceled) {
						t.Errorf("untyped batchErr: %v", batchErr)
					}
					errTot += int64(batchLen)
				} else if errs != nil {
					for _, e := range errs {
						if e == nil {
							continue
						}
						if !errors.Is(e, chain.ErrMempoolFull) && !errors.Is(e, chain.ErrThrottled) && !errors.Is(e, chain.ErrCanceled) {
							t.Errorf("untyped per-tx err: %v", e)
						}
						errTot++
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	drainWG.Wait()
	if okTot+errTot != producers*batches*batchLen {
		t.Fatalf("accounting: ok %d + err %d != %d", okTot, errTot, producers*batches*batchLen)
	}
	if drained != okTot {
		t.Fatalf("drained %d != admitted %d", drained, okTot)
	}
	st := p.Stats()
	if int64(st.Admitted) != okTot || int64(st.RejFull+st.Throttled+st.Canceled) != errTot {
		t.Fatalf("stats %+v vs ok %d err %d", st, okTot, errTot)
	}
	if st.Peak > 64 {
		t.Fatalf("peak %d exceeds capacity", st.Peak)
	}
}
