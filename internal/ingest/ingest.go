// Package ingest implements the thread-safe submission front end both
// chain backends share: a segmented mempool many producer goroutines
// append to concurrently, with explicit admission control (capacity
// wall, soft-mark shedding, bounded blocking) returning the typed
// backpressure errors defined in internal/chain, and a single-consumer
// drain that merges the segments into one canonical order.
//
// Determinism is the design constraint. Segments exist purely to spread
// producer lock contention — they carry no ordering meaning. Every
// admitted entry takes a ticket from ONE global atomic sequence, and
// Drain merges the segments back into ticket order, so the canonical
// order depends only on the admission interleaving the producers
// actually achieved, never on segment count or drain timing.
// That order, recorded per drain boundary (chain.ArrivalLog), is what a
// single-producer replay feeds back to reproduce a concurrent run
// bit-identically (DESIGN.md invariant 13).
//
// Concurrency contract: Admit/AdmitOne/Len/Stats are safe from any
// goroutine; Drain, CloseIfEmpty, and Close belong to the single
// lifecycle consumer (the simulator goroutine).
package ingest

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/summary"
)

// Policy parameterizes admission control. The zero value takes the
// defaults below via New.
type Policy struct {
	// Capacity is the hard mempool bound across all segments.
	Capacity int
	// SoftMark, when below Capacity, sheds whole batches arriving while
	// occupancy is at or above it (chain.ErrThrottled).
	SoftMark int
	// Segments is the mempool partition count (contention spreading
	// only; no ordering effect).
	Segments int
	// MaxWait bounds how long one Admit call blocks wall-clock on a
	// full mempool before chain.ErrMempoolFull; <= 0 rejects
	// immediately. Keep it small: the lifecycle consumer itself may
	// submit (drivers run on the simulator goroutine), and it must
	// never block on a drain only it can perform.
	MaxWait time.Duration
	// RetryHint is the backoff carried on rejections — typically one
	// round duration, the mempool's drain cadence.
	RetryHint time.Duration
}

// Default policy values (New fills zeroes with these).
const (
	DefaultCapacity = 1 << 20
	DefaultSegments = 8
	DefaultMaxWait  = 10 * time.Millisecond
)

// Entry is one admitted transaction with its receipt and global
// admission sequence number (assigned by the pool).
type Entry struct {
	Seq uint64
	Tx  *summary.Tx
	Rc  *chain.Receipt
}

// segment is one mutex-guarded mempool partition. The sequence ticket
// is taken under the segment lock, so entries is always sorted by Seq —
// Drain merges instead of sorting. spare is the double buffer: Drain
// steals entries and installs the previous drain's (already merged)
// buffer in its place, so sustained load allocates nothing. The padding
// keeps hot segment locks off each other's cache lines under many
// producers.
type segment struct {
	mu      sync.Mutex
	entries []Entry
	spare   []Entry
	_       [16]byte
}

// Pool is the concurrent mempool with admission control.
type Pool struct {
	pol  Policy
	segs []segment

	// seq is the global admission sequence: the canonical order. It is
	// only advanced under a segment lock, which keeps every segment
	// internally sorted; rr spreads producers across segments.
	seq atomic.Uint64
	rr  atomic.Uint64
	// occ is the live occupancy (reservations included); peak tracks
	// its high-water mark.
	occ  atomic.Int64
	peak atomic.Int64
	// closed gates admission; see CloseIfEmpty for the race protocol.
	closed atomic.Bool

	// Admission outcome counters.
	admitted  atomic.Uint64
	rejFull   atomic.Uint64
	throttled atomic.Uint64
	canceled  atomic.Uint64

	// wait is a close-and-replace broadcast: producers blocked at
	// capacity select on the current channel; Drain and Close close it
	// to wake them all. mu guards the swap.
	mu   sync.Mutex
	wait chan struct{}

	// drainBuf is the reused merge buffer Drain returns (single
	// consumer, consumed before the next drain — see Drain); runs is
	// Drain's reused per-segment scratch.
	drainBuf []Entry
	runs     [][]Entry
}

// Stats is a snapshot of the pool's admission counters.
type Stats struct {
	Admitted  uint64
	RejFull   uint64
	Throttled uint64
	Canceled  uint64
	Peak      int
}

// New builds a pool, filling zero policy fields with the defaults.
// MaxWait keeps an explicit negative as "never block".
func New(pol Policy) *Pool {
	if pol.Capacity <= 0 {
		pol.Capacity = DefaultCapacity
	}
	if pol.SoftMark <= 0 || pol.SoftMark > pol.Capacity {
		pol.SoftMark = pol.Capacity
	}
	if pol.Segments <= 0 {
		pol.Segments = DefaultSegments
	}
	if pol.MaxWait == 0 {
		pol.MaxWait = DefaultMaxWait
	}
	return &Pool{
		pol:  pol,
		segs: make([]segment, pol.Segments),
		wait: make(chan struct{}),
	}
}

// Policy returns the pool's effective (default-filled) policy.
func (p *Pool) Policy() Policy { return p.pol }

// Len returns the current occupancy (admitted entries not yet drained,
// plus in-flight reservations).
func (p *Pool) Len() int { return int(p.occ.Load()) }

// Stats snapshots the admission counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Admitted:  p.admitted.Load(),
		RejFull:   p.rejFull.Load(),
		Throttled: p.throttled.Load(),
		Canceled:  p.canceled.Load(),
		Peak:      int(p.peak.Load()),
	}
}

// admission builds the typed backpressure error for one sentinel.
func (p *Pool) admission(sentinel error) *chain.AdmissionError {
	hint := p.pol.RetryHint
	if sentinel == chain.ErrClosed {
		hint = 0
	}
	return &chain.AdmissionError{
		Err:        sentinel,
		RetryAfter: hint,
		Occupancy:  int(p.occ.Load()),
		Capacity:   p.pol.Capacity,
	}
}

// count attributes a rejection of n entries to its counter.
func (p *Pool) count(err error, n int) {
	var ae *chain.AdmissionError
	if !errorsAs(err, &ae) {
		return
	}
	switch ae.Err {
	case chain.ErrMempoolFull:
		p.rejFull.Add(uint64(n))
	case chain.ErrThrottled:
		p.throttled.Add(uint64(n))
	case chain.ErrCanceled:
		p.canceled.Add(uint64(n))
	}
}

// errorsAs is errors.As without the import weight in the hot path.
func errorsAs(err error, target **chain.AdmissionError) bool {
	ae, ok := err.(*chain.AdmissionError)
	if ok {
		*target = ae
	}
	return ok
}

// AdmitOne admits a single entry (assigning Entry.Seq), blocking up to
// MaxWait when the mempool is full. Safe for concurrent producers.
func (p *Pool) AdmitOne(ctx context.Context, e Entry) error {
	var timer *time.Timer
	err := p.admitOne(ctx, e, &timer)
	if timer != nil {
		timer.Stop()
	}
	if err != nil {
		p.count(err, 1)
	}
	return err
}

// Admit admits a batch in order with partial-accept semantics: it
// returns how many leading entries were admitted and, when admission
// failed partway, a per-entry error slice where every entry from the
// failure point on carries the failing error (order-preserving: nothing
// after the failure was attempted). The single error return is reserved
// for whole-batch refusals decided before any admission attempt: pool
// closed, context already done, or occupancy above the soft mark
// (throttle shedding is batch-granular by design — a half-throttled
// batch helps nobody). MaxWait is a per-batch budget, not per-entry.
func (p *Pool) Admit(ctx context.Context, entries []Entry) (int, []error, error) {
	if len(entries) == 0 {
		return 0, nil, nil
	}
	if p.closed.Load() {
		return 0, nil, p.admission(chain.ErrClosed)
	}
	if ctx != nil && ctx.Err() != nil {
		err := p.admission(chain.ErrCanceled)
		p.count(err, len(entries))
		return 0, nil, err
	}
	if occ := int(p.occ.Load()); occ >= p.pol.SoftMark && p.pol.SoftMark < p.pol.Capacity {
		err := p.admission(chain.ErrThrottled)
		p.count(err, len(entries))
		return 0, nil, err
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for i := range entries {
		if err := p.admitOne(ctx, entries[i], &timer); err != nil {
			p.count(err, len(entries)-i)
			errs := make([]error, len(entries))
			for j := i; j < len(entries); j++ {
				errs[j] = err
			}
			return i, errs, nil
		}
	}
	return len(entries), nil, nil
}

// admitOne reserves capacity, takes a global sequence ticket, and
// appends to the ticket's segment. The shared lazy timer implements the
// caller's MaxWait budget.
func (p *Pool) admitOne(ctx context.Context, e Entry, timer **time.Timer) error {
	for {
		if p.closed.Load() {
			return p.admission(chain.ErrClosed)
		}
		cur := p.occ.Load()
		if int(cur) >= p.pol.Capacity {
			if err := p.waitRoom(ctx, timer); err != nil {
				return err
			}
			continue
		}
		if p.occ.CompareAndSwap(cur, cur+1) {
			break
		}
	}
	// Close race: CloseIfEmpty may have observed occ == 0 and committed
	// between our closed-check and the reservation. Re-check and roll
	// back — the reservation never becomes visible.
	if p.closed.Load() {
		p.occ.Add(-1)
		return p.admission(chain.ErrClosed)
	}
	for {
		cur, pk := p.occ.Load(), p.peak.Load()
		if cur <= pk || p.peak.CompareAndSwap(pk, cur) {
			break
		}
	}
	s := &p.segs[p.rr.Add(1)%uint64(len(p.segs))]
	s.mu.Lock()
	// The ticket is taken under the segment lock so appends land in
	// ticket order: each segment stays sorted by Seq and Drain can merge
	// runs instead of sorting the union.
	seq := p.seq.Add(1)
	s.entries = append(s.entries, Entry{Seq: seq, Tx: e.Tx, Rc: e.Rc})
	s.mu.Unlock()
	p.admitted.Add(1)
	return nil
}

// waitRoom blocks until a drain frees capacity, the caller's context
// ends, or the MaxWait budget runs out. Returning nil means "re-check":
// the caller loops and re-reads occupancy.
func (p *Pool) waitRoom(ctx context.Context, timer **time.Timer) error {
	if p.pol.MaxWait <= 0 {
		return p.admission(chain.ErrMempoolFull)
	}
	if *timer == nil {
		*timer = time.NewTimer(p.pol.MaxWait)
	}
	p.mu.Lock()
	ch := p.wait
	p.mu.Unlock()
	// Re-check AFTER capturing the wait channel: a drain that ran
	// between the occupancy check and here already closed-and-replaced
	// the old channel, and sleeping on the new one would miss it.
	if int(p.occ.Load()) < p.pol.Capacity || p.closed.Load() {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-ch:
		return nil
	case <-done:
		return p.admission(chain.ErrCanceled)
	case <-(*timer).C:
		return p.admission(chain.ErrMempoolFull)
	}
}

// wake closes-and-replaces the broadcast channel, releasing every
// producer blocked at capacity.
func (p *Pool) wake() {
	p.mu.Lock()
	close(p.wait)
	p.wait = make(chan struct{})
	p.mu.Unlock()
}

// Drain removes every buffered entry and returns them in canonical
// (global-sequence) order, then wakes blocked producers. Single
// consumer only — the lifecycle calls it at each round start. The
// returned slice is a reused buffer valid only until the next Drain
// call: the consumer copies entries out (into its meta-block queue)
// before draining again. Reuse matters — under sustained load a fresh
// per-round merge buffer was the pool's dominant garbage source, and
// the GC assists it triggered were charged to producer goroutines.
func (p *Pool) Drain() []Entry {
	// Steal each segment's sorted run, installing the previous drain's
	// (already merged, hence free) buffer in its place — the lock is
	// held only for the swap, and sustained load allocates nothing.
	runs := p.runs[:0]
	total := 0
	for i := range p.segs {
		s := &p.segs[i]
		s.mu.Lock()
		if len(s.entries) > 0 {
			runs = append(runs, s.entries)
			total += len(s.entries)
			s.entries, s.spare = s.spare[:0], s.entries
		}
		s.mu.Unlock()
	}
	p.runs = runs
	if total == 0 {
		return nil
	}
	out := p.drainBuf[:0]
	if cap(out) < total {
		out = make([]Entry, 0, total)
	}
	// K-way merge on the Seq tickets. Segments are sorted by
	// construction (the ticket is taken under the segment lock), so the
	// linear min-head scan across <= Segments runs replaces a
	// comparison sort of the union — under sustained load the sort's
	// swap traffic (and its write barriers) dominated the profile.
	for len(runs) > 0 {
		min := 0
		for r := 1; r < len(runs); r++ {
			if runs[r][0].Seq < runs[min][0].Seq {
				min = r
			}
		}
		out = append(out, runs[min][0])
		if runs[min] = runs[min][1:]; len(runs[min]) == 0 {
			runs[min] = runs[len(runs)-1]
			runs = runs[:len(runs)-1]
		}
	}
	p.drainBuf = out
	p.occ.Add(int64(-total))
	p.wake()
	return out
}

// CloseIfEmpty atomically closes the pool if nothing is buffered or
// reserved, and reports whether it is now closed. The lifecycle's
// end-of-run decision calls it at the round boundary: true means no
// producer can sneak a transaction in after the decision (admission is
// gated before reservation and rolled back after), false means entries
// exist or arrived mid-decision — run a drain epoch and decide again.
//
// The race protocol: store closed=true FIRST, then check occupancy.
// A producer reserves occupancy first, then re-checks closed. Whatever
// the interleaving, either the producer sees closed and rolls back, or
// the closer sees the reservation and reopens — a transaction is never
// stranded in a closed pool. (The benign worst case: the closer sees a
// reservation that is about to roll back, reopens, and the next
// boundary closes for real — one extra empty drain epoch.)
func (p *Pool) CloseIfEmpty() bool {
	if p.closed.Load() {
		return true
	}
	p.closed.Store(true)
	if p.occ.Load() != 0 {
		p.closed.Store(false)
		return false
	}
	p.wake()
	return true
}

// Close closes the pool unconditionally: subsequent admissions fail
// with chain.ErrClosed and blocked producers wake. Buffered entries
// remain drainable.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.wake()
}

// Closed reports whether admission is closed.
func (p *Pool) Closed() bool { return p.closed.Load() }
