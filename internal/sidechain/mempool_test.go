package sidechain

import (
	"fmt"
	"testing"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
)

func mpTx(id string) *summary.Tx {
	return &summary.Tx{ID: id, Kind: gasmodel.KindSwap, User: "u"}
}

func TestMempoolAddDedup(t *testing.T) {
	m := NewMempool()
	if !m.Add(mpTx("a")) {
		t.Error("first add should succeed")
	}
	if m.Add(mpTx("a")) {
		t.Error("duplicate broadcast must be dropped")
	}
	if m.Len() != 1 || !m.Contains("a") {
		t.Errorf("len=%d contains=%v", m.Len(), m.Contains("a"))
	}
}

func TestMempoolPeekRespectsSizeAndOrder(t *testing.T) {
	m := NewMempool()
	for i := 0; i < 10; i++ {
		m.Add(mpTx(fmt.Sprintf("tx%d", i)))
	}
	// Each swap is 1008 bytes; 3 fit in 3100.
	got := m.Peek(3100)
	if len(got) != 3 {
		t.Fatalf("peek returned %d, want 3", len(got))
	}
	for i, tx := range got {
		if tx.ID != fmt.Sprintf("tx%d", i) {
			t.Errorf("order broken at %d: %s", i, tx.ID)
		}
	}
	if m.Len() != 10 {
		t.Error("peek must not remove")
	}
}

func TestMempoolRemoveIncluded(t *testing.T) {
	m := NewMempool()
	for i := 0; i < 6; i++ {
		m.Add(mpTx(fmt.Sprintf("tx%d", i)))
	}
	block := NewMetaBlock(1, 1, "leader", [32]byte{}, []*summary.Tx{
		mpTx("tx1"), mpTx("tx3"), mpTx("ghost"),
	})
	if removed := m.RemoveIncluded(block); removed != 2 {
		t.Errorf("removed %d, want 2", removed)
	}
	if m.Contains("tx1") || m.Contains("tx3") {
		t.Error("included txs still queued")
	}
	if m.Len() != 4 {
		t.Errorf("len = %d", m.Len())
	}
	// FIFO order preserved for the rest.
	rest := m.Peek(1 << 20)
	want := []string{"tx0", "tx2", "tx4", "tx5"}
	for i, tx := range rest {
		if tx.ID != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, tx.ID, want[i])
		}
	}
	// Idempotent.
	if removed := m.RemoveIncluded(block); removed != 0 {
		t.Errorf("second removal removed %d", removed)
	}
}

func TestMempoolRemoveSingle(t *testing.T) {
	m := NewMempool()
	m.Add(mpTx("a"))
	m.Add(mpTx("b"))
	if !m.Remove("a") || m.Remove("a") {
		t.Error("remove semantics broken")
	}
	if m.Len() != 1 || !m.Contains("b") {
		t.Error("wrong tx removed")
	}
}

func TestMempoolCarryOver(t *testing.T) {
	// Remark 2: unprocessed transactions survive epoch boundaries — they
	// simply stay queued until a block includes them.
	m := NewMempool()
	for i := 0; i < 100; i++ {
		m.Add(mpTx(fmt.Sprintf("tx%d", i)))
	}
	// Epoch 1 mines one small block.
	included := m.Peek(5 * 1008)
	block := NewMetaBlock(1, 1, "leader", [32]byte{}, included)
	m.RemoveIncluded(block)
	if m.Len() != 95 {
		t.Errorf("carry-over = %d, want 95", m.Len())
	}
}

func TestMempoolTombstoneCompaction(t *testing.T) {
	// Heavy single-tx removal (the rejected-tx path) must keep the queue
	// consistent while compacting lazily.
	m := NewMempool()
	const n = 1000
	for i := 0; i < n; i++ {
		m.Add(mpTx(fmt.Sprintf("tx%04d", i)))
	}
	for i := 0; i < n; i += 2 {
		if !m.Remove(fmt.Sprintf("tx%04d", i)) {
			t.Fatalf("remove tx%04d failed", i)
		}
	}
	if m.Len() != n/2 {
		t.Fatalf("len = %d, want %d", m.Len(), n/2)
	}
	rest := m.Peek(1 << 30)
	if len(rest) != n/2 {
		t.Fatalf("peek returned %d, want %d", len(rest), n/2)
	}
	for i, tx := range rest {
		want := fmt.Sprintf("tx%04d", 2*i+1)
		if tx.ID != want {
			t.Fatalf("order[%d] = %s, want %s", i, tx.ID, want)
		}
	}
}

func TestMempoolReAddAfterRemove(t *testing.T) {
	// A tombstoned slot must not resurrect when the same ID is re-added:
	// the fresh copy keeps its new FIFO place.
	m := NewMempool()
	m.Add(mpTx("a"))
	m.Add(mpTx("b"))
	m.Remove("a")
	if !m.Add(mpTx("a")) {
		t.Fatal("re-add after remove should succeed")
	}
	got := m.Peek(1 << 20)
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "a" {
		ids := []string{}
		for _, tx := range got {
			ids = append(ids, tx.ID)
		}
		t.Fatalf("peek order = %v, want [b a]", ids)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
}

func TestMempoolSamePointerReAdd(t *testing.T) {
	// Re-adding the very same *Tx object after removal must not
	// resurrect its tombstoned slot: exactly one live copy, at the back.
	m := NewMempool()
	tx := mpTx("a")
	m.Add(tx)
	m.Add(mpTx("b"))
	m.Remove("a")
	if !m.Add(tx) {
		t.Fatal("same-pointer re-add should succeed")
	}
	got := m.Peek(1 << 20)
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "a" {
		ids := []string{}
		for _, x := range got {
			ids = append(ids, x.ID)
		}
		t.Fatalf("peek order = %v, want [b a] with no duplicates", ids)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
}

// TestMempoolCompactReleasesSpike pins the long-run memory contract: a
// traffic spike followed by removals must not pin the spike's backing
// array or index-map capacity — the amortized compaction rebuilds both
// at the live size as the spike drains, with no explicit call needed.
func TestMempoolCompactReleasesSpike(t *testing.T) {
	m := NewMempool()
	const spike = 100_000
	for i := 0; i < spike; i++ {
		m.Add(&summary.Tx{ID: fmt.Sprintf("spike-%d", i), Kind: gasmodel.KindSwap})
	}
	for i := 0; i < spike-10; i++ {
		m.Remove(fmt.Sprintf("spike-%d", i))
	}
	if m.Len() != 10 {
		t.Fatalf("live = %d, want 10", m.Len())
	}
	if c := cap(m.order); c > 1024 {
		t.Errorf("order backing array still holds capacity %d after the spike drained", c)
	}
	// FIFO order of the survivors is preserved.
	peek := m.Peek(1 << 30)
	if len(peek) != 10 || peek[0].ID != fmt.Sprintf("spike-%d", spike-10) {
		t.Errorf("survivors disordered: %d entries, first %q", len(peek), peek[0].ID)
	}
	// Steady-state churn at small size never rebuilds into growth.
	for i := 0; i < 10_000; i++ {
		id := fmt.Sprintf("churn-%d", i)
		m.Add(&summary.Tx{ID: id, Kind: gasmodel.KindSwap})
		m.Remove(id)
	}
	if c := cap(m.order); c > 4096 {
		t.Errorf("churn grew the backing array to %d", c)
	}
}
