package sidechain

import (
	"fmt"
	"testing"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
)

func mpTx(id string) *summary.Tx {
	return &summary.Tx{ID: id, Kind: gasmodel.KindSwap, User: "u"}
}

func TestMempoolAddDedup(t *testing.T) {
	m := NewMempool()
	if !m.Add(mpTx("a")) {
		t.Error("first add should succeed")
	}
	if m.Add(mpTx("a")) {
		t.Error("duplicate broadcast must be dropped")
	}
	if m.Len() != 1 || !m.Contains("a") {
		t.Errorf("len=%d contains=%v", m.Len(), m.Contains("a"))
	}
}

func TestMempoolPeekRespectsSizeAndOrder(t *testing.T) {
	m := NewMempool()
	for i := 0; i < 10; i++ {
		m.Add(mpTx(fmt.Sprintf("tx%d", i)))
	}
	// Each swap is 1008 bytes; 3 fit in 3100.
	got := m.Peek(3100)
	if len(got) != 3 {
		t.Fatalf("peek returned %d, want 3", len(got))
	}
	for i, tx := range got {
		if tx.ID != fmt.Sprintf("tx%d", i) {
			t.Errorf("order broken at %d: %s", i, tx.ID)
		}
	}
	if m.Len() != 10 {
		t.Error("peek must not remove")
	}
}

func TestMempoolRemoveIncluded(t *testing.T) {
	m := NewMempool()
	for i := 0; i < 6; i++ {
		m.Add(mpTx(fmt.Sprintf("tx%d", i)))
	}
	block := NewMetaBlock(1, 1, "leader", [32]byte{}, []*summary.Tx{
		mpTx("tx1"), mpTx("tx3"), mpTx("ghost"),
	})
	if removed := m.RemoveIncluded(block); removed != 2 {
		t.Errorf("removed %d, want 2", removed)
	}
	if m.Contains("tx1") || m.Contains("tx3") {
		t.Error("included txs still queued")
	}
	if m.Len() != 4 {
		t.Errorf("len = %d", m.Len())
	}
	// FIFO order preserved for the rest.
	rest := m.Peek(1 << 20)
	want := []string{"tx0", "tx2", "tx4", "tx5"}
	for i, tx := range rest {
		if tx.ID != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, tx.ID, want[i])
		}
	}
	// Idempotent.
	if removed := m.RemoveIncluded(block); removed != 0 {
		t.Errorf("second removal removed %d", removed)
	}
}

func TestMempoolRemoveSingle(t *testing.T) {
	m := NewMempool()
	m.Add(mpTx("a"))
	m.Add(mpTx("b"))
	if !m.Remove("a") || m.Remove("a") {
		t.Error("remove semantics broken")
	}
	if m.Len() != 1 || !m.Contains("b") {
		t.Error("wrong tx removed")
	}
}

func TestMempoolCarryOver(t *testing.T) {
	// Remark 2: unprocessed transactions survive epoch boundaries — they
	// simply stay queued until a block includes them.
	m := NewMempool()
	for i := 0; i < 100; i++ {
		m.Add(mpTx(fmt.Sprintf("tx%d", i)))
	}
	// Epoch 1 mines one small block.
	included := m.Peek(5 * 1008)
	block := NewMetaBlock(1, 1, "leader", [32]byte{}, included)
	m.RemoveIncluded(block)
	if m.Len() != 95 {
		t.Errorf("carry-over = %d, want 95", m.Len())
	}
}
