package election

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"

	"ammboost/internal/crypto/vrf"
)

// FastVRF is a keyed-hash stand-in for the RSA-FDH VRF used when
// experiments instantiate 1000+ miners: Evaluate is HMAC-SHA256 under the
// miner's secret, and the "proof" is the MAC itself. Verification
// recomputes the MAC, which requires the secret — so the public
// verifiability property is only modeled, not enforced, in experiment
// runs. Functional tests use the real VRF (vrf.PrivateKey) via RealVRF.
type FastVRF struct {
	secret [32]byte
}

// NewFastVRF derives a FastVRF from a seed (e.g., the miner ID plus an
// experiment seed).
func NewFastVRF(seed []byte) *FastVRF {
	return &FastVRF{secret: sha256.Sum256(seed)}
}

// Evaluate implements VRF.
func (f *FastVRF) Evaluate(input []byte) ([32]byte, []byte, error) {
	mac := hmac.New(sha256.New, f.secret[:])
	mac.Write(input)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out, out[:], nil
}

// Verify implements VRF by recomputation.
func (f *FastVRF) Verify(input, proof []byte) ([32]byte, error) {
	out, _, _ := f.Evaluate(input)
	if !hmac.Equal(out[:], proof) {
		return [32]byte{}, errors.New("fastvrf: proof mismatch")
	}
	return out, nil
}

// RealVRF adapts the RSA-FDH keypair to the election VRF interface.
type RealVRF struct {
	SK *vrf.PrivateKey
	PK *vrf.PublicKey
}

// Evaluate implements VRF.
func (r *RealVRF) Evaluate(input []byte) ([32]byte, []byte, error) {
	return r.SK.Evaluate(input)
}

// Verify implements VRF.
func (r *RealVRF) Verify(input, proof []byte) ([32]byte, error) {
	return r.PK.Verify(input, proof)
}
