package election

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ammboost/internal/crypto/vrf"
)

func fastRegistry(n int) *Registry {
	reg := NewRegistry()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("miner-%03d", i)
		reg.Add(&Miner{ID: id, Stake: 1, VRF: NewFastVRF([]byte(id))})
	}
	return reg
}

func TestElectDeterministic(t *testing.T) {
	reg := fastRegistry(50)
	seed := [32]byte{1, 2, 3}
	c1, err := Elect(reg, seed, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Elect(reg, seed, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Members {
		if c1.Members[i].MinerID != c2.Members[i].MinerID {
			t.Fatal("election must be deterministic for a fixed seed")
		}
	}
	if len(c1.Members) != 10 {
		t.Errorf("committee size = %d", len(c1.Members))
	}
}

func TestElectRotatesAcrossEpochs(t *testing.T) {
	reg := fastRegistry(100)
	seed := [32]byte{9}
	c1, _ := Elect(reg, seed, 1, 20)
	c2, _ := Elect(reg, seed, 2, 20)
	same := 0
	in1 := map[string]bool{}
	for _, m := range c1.Members {
		in1[m.MinerID] = true
	}
	for _, m := range c2.Members {
		if in1[m.MinerID] {
			same++
		}
	}
	if same == 20 {
		t.Error("consecutive epochs elected identical committees; rotation failed")
	}
	if c1.Leader() == c2.Leader() && c1.Members[1].MinerID == c2.Members[1].MinerID {
		t.Log("leaders coincide; acceptable but unusual")
	}
}

func TestElectTooFewMiners(t *testing.T) {
	reg := fastRegistry(5)
	if _, err := Elect(reg, [32]byte{}, 1, 10); !errors.Is(err, ErrTooFewMiners) {
		t.Errorf("want ErrTooFewMiners, got %v", err)
	}
}

func TestMembershipProofVerifies(t *testing.T) {
	reg := fastRegistry(30)
	seed := [32]byte{7}
	c, err := Elect(reg, seed, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Members {
		if err := VerifyMembership(reg, seed, 3, m); err != nil {
			t.Errorf("member %s: %v", m.MinerID, err)
		}
	}
	// Wrong epoch must not verify.
	if err := VerifyMembership(reg, seed, 4, c.Members[0]); !errors.Is(err, ErrBadProof) {
		t.Errorf("wrong epoch: %v", err)
	}
	// Forged ticket must not verify.
	forged := c.Members[0]
	forged.MinerID = "miner-029"
	if err := VerifyMembership(reg, seed, 3, forged); !errors.Is(err, ErrBadProof) {
		t.Errorf("forged ticket: %v", err)
	}
}

func TestRealVRFElection(t *testing.T) {
	// A small population with the real RSA-FDH VRF: proofs must be
	// publicly verifiable through the same interface.
	reg := NewRegistry()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 6; i++ {
		sk, pk, err := vrf.GenerateKey(r, 1024)
		if err != nil {
			t.Fatal(err)
		}
		reg.Add(&Miner{ID: fmt.Sprintf("rsa-%d", i), Stake: 1, VRF: &RealVRF{SK: sk, PK: pk}})
	}
	seed := [32]byte{42}
	c, err := Elect(reg, seed, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Members {
		if err := VerifyMembership(reg, seed, 1, m); err != nil {
			t.Errorf("member %s: %v", m.MinerID, err)
		}
	}
}

func TestStakeWeighting(t *testing.T) {
	// A miner with max stake should be elected leader far more often than
	// a 1-stake miner across many epochs.
	reg := NewRegistry()
	reg.Add(&Miner{ID: "whale", Stake: 8, VRF: NewFastVRF([]byte("whale"))})
	for i := 0; i < 7; i++ {
		id := fmt.Sprintf("fish-%d", i)
		reg.Add(&Miner{ID: id, Stake: 1, VRF: NewFastVRF([]byte(id))})
	}
	whaleLeads := 0
	for e := uint64(1); e <= 400; e++ {
		c, err := Elect(reg, [32]byte{13}, e, 3)
		if err != nil {
			t.Fatal(err)
		}
		if c.Leader() == "whale" {
			whaleLeads++
		}
	}
	// Expected share ≈ 8/15 ≈ 53%; a 1-stake miner would lead ~6.7%.
	if whaleLeads < 120 {
		t.Errorf("whale led only %d/400 epochs; stake weighting ineffective", whaleLeads)
	}
}

func TestLeaderRotationWithinCommittee(t *testing.T) {
	reg := fastRegistry(20)
	c, _ := Elect(reg, [32]byte{3}, 1, 5)
	if c.LeaderAt(0) != c.Leader() {
		t.Error("view 0 leader mismatch")
	}
	seen := map[string]bool{}
	for v := 0; v < 5; v++ {
		seen[c.LeaderAt(v)] = true
	}
	if len(seen) != 5 {
		t.Errorf("leader rotation covered %d of 5 members", len(seen))
	}
	if c.Index(c.Leader()) != 0 {
		t.Error("leader index should be 0")
	}
	if c.Index("nobody") != -1 {
		t.Error("unknown member index should be -1")
	}
}

func TestRegistryAddRemove(t *testing.T) {
	reg := NewRegistry()
	reg.Add(&Miner{ID: "a", VRF: NewFastVRF([]byte("a"))})
	reg.Add(&Miner{ID: "a", VRF: NewFastVRF([]byte("a"))}) // duplicate ignored
	reg.Add(&Miner{ID: "b", VRF: NewFastVRF([]byte("b"))})
	if reg.Size() != 2 {
		t.Errorf("size = %d", reg.Size())
	}
	reg.Remove("a")
	reg.Remove("ghost")
	if reg.Size() != 1 || reg.Miner("a") != nil {
		t.Error("remove failed")
	}
}

func BenchmarkElect1000(b *testing.B) {
	reg := fastRegistry(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Elect(reg, [32]byte{1}, uint64(i), 500); err != nil {
			b.Fatal(err)
		}
	}
}
