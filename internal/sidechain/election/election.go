// Package election implements per-epoch committee election by cryptographic
// sortition: every registered miner evaluates a VRF over the epoch seed,
// and the committee is the set with the smallest outputs (ranked
// sortition), the leader being the overall minimum. Election proofs are the
// VRF proofs, so anyone can verify that a claimed committee is the rightful
// one — the property TokenBank's TSQC key registration relies on.
package election

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Election errors.
var (
	ErrTooFewMiners = errors.New("election: committee size exceeds miner population")
	ErrBadProof     = errors.New("election: invalid election proof")
	ErrNotElected   = errors.New("election: miner not in committee")
)

// VRF abstracts the verifiable random function used for sortition. The
// production implementation is crypto/vrf (RSA-FDH); experiments use the
// fast keyed-hash variant (see FastVRF) to keep 1000-miner populations
// cheap — a substitution documented in DESIGN.md.
type VRF interface {
	// Evaluate computes the miner's sortition output and proof.
	Evaluate(input []byte) (out [32]byte, proof []byte, err error)
	// Verify checks a proof (using the public part) and returns the output.
	Verify(input, proof []byte) ([32]byte, error)
}

// Miner is a registered sidechain miner with sortition keys. Mining power
// (stake) weights election probability via repeated sub-user evaluation,
// as in stake-based sortition.
type Miner struct {
	ID    string
	Stake uint64
	VRF   VRF
}

// Registry is the Sybil-resistant miner set (identities backed by stake).
type Registry struct {
	miners []*Miner
	byID   map[string]*Miner
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*Miner)}
}

// Add registers a miner.
func (r *Registry) Add(m *Miner) {
	if _, dup := r.byID[m.ID]; dup {
		return
	}
	r.miners = append(r.miners, m)
	r.byID[m.ID] = m
}

// Remove deregisters a miner (leaving the system).
func (r *Registry) Remove(id string) {
	if _, ok := r.byID[id]; !ok {
		return
	}
	delete(r.byID, id)
	for i, m := range r.miners {
		if m.ID == id {
			r.miners = append(r.miners[:i], r.miners[i+1:]...)
			break
		}
	}
}

// Size returns the miner population.
func (r *Registry) Size() int { return len(r.miners) }

// Miner returns a miner by ID, or nil.
func (r *Registry) Miner(id string) *Miner { return r.byID[id] }

// Ticket is one miner's sortition entry with its publicly verifiable proof.
type Ticket struct {
	MinerID string
	Output  [32]byte
	Proof   []byte
}

// Committee is the elected epoch committee, ordered by sortition output
// (index 0 is the leader).
type Committee struct {
	Epoch   uint64
	Members []Ticket
}

// Leader returns the committee leader's ID.
func (c *Committee) Leader() string { return c.Members[0].MinerID }

// LeaderAt returns the leader after v view changes (round-robin over the
// sortition order, as PBFT view change rotates).
func (c *Committee) LeaderAt(view int) string {
	return c.Members[view%len(c.Members)].MinerID
}

// MemberIDs returns the member IDs in sortition order.
func (c *Committee) MemberIDs() []string {
	out := make([]string, len(c.Members))
	for i, m := range c.Members {
		out[i] = m.MinerID
	}
	return out
}

// Index returns a member's position (0 = leader), or -1.
func (c *Committee) Index(id string) int {
	for i, m := range c.Members {
		if m.MinerID == id {
			return i
		}
	}
	return -1
}

// Seed derives the sortition input for an epoch from the chain seed.
func Seed(chainSeed [32]byte, epoch uint64) []byte {
	out := make([]byte, 40)
	copy(out, chainSeed[:])
	binary.BigEndian.PutUint64(out[32:], epoch)
	return out
}

// Elect runs ranked sortition for an epoch: every miner evaluates its VRF
// on the epoch seed and the size smallest outputs form the committee, the
// smallest being the leader. Stake weights the draw by evaluating one
// sub-ticket per stake unit (capped at 8 to bound work) and keeping the
// best.
func Elect(reg *Registry, chainSeed [32]byte, epoch uint64, size int) (*Committee, error) {
	if size > reg.Size() {
		return nil, fmt.Errorf("%w: want %d of %d", ErrTooFewMiners, size, reg.Size())
	}
	input := Seed(chainSeed, epoch)
	tickets := make([]Ticket, 0, reg.Size())
	for _, m := range reg.miners {
		best, proof, err := evalBest(m, input)
		if err != nil {
			return nil, err
		}
		tickets = append(tickets, Ticket{MinerID: m.ID, Output: best, Proof: proof})
	}
	sort.Slice(tickets, func(i, j int) bool {
		return lessOutput(tickets[i], tickets[j])
	})
	return &Committee{Epoch: epoch, Members: tickets[:size]}, nil
}

func evalBest(m *Miner, input []byte) ([32]byte, []byte, error) {
	subs := m.Stake
	if subs == 0 {
		subs = 1
	}
	if subs > 8 {
		subs = 8
	}
	var best [32]byte
	var bestProof []byte
	for s := uint64(0); s < subs; s++ {
		in := append(append([]byte{}, input...), byte(s))
		out, proof, err := m.VRF.Evaluate(in)
		if err != nil {
			return best, nil, err
		}
		if bestProof == nil || lessBytes(out, best) {
			best, bestProof = out, proof
		}
	}
	return best, bestProof, nil
}

func lessOutput(a, b Ticket) bool {
	if a.Output != b.Output {
		return lessBytes(a.Output, b.Output)
	}
	return a.MinerID < b.MinerID // deterministic tie-break
}

func lessBytes(a, b [32]byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// VerifyMembership checks a member's election proof against the registry
// and epoch seed: the proof must be a valid VRF proof whose output matches
// the ticket. This is what committee e runs before registering committee
// e+1's group key on TokenBank.
func VerifyMembership(reg *Registry, chainSeed [32]byte, epoch uint64, t Ticket) error {
	m := reg.Miner(t.MinerID)
	if m == nil {
		return fmt.Errorf("%w: unknown miner %s", ErrBadProof, t.MinerID)
	}
	input := Seed(chainSeed, epoch)
	// The proof corresponds to one of the miner's sub-tickets.
	subs := m.Stake
	if subs == 0 {
		subs = 1
	}
	if subs > 8 {
		subs = 8
	}
	for s := uint64(0); s < subs; s++ {
		in := append(append([]byte{}, input...), byte(s))
		out, err := m.VRF.Verify(in, t.Proof)
		if err == nil && out == t.Output {
			return nil
		}
	}
	return ErrBadProof
}
