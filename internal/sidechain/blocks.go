// Package sidechain implements the AMM's dependent sidechain: temporary
// meta-blocks recording the processed transactions, permanent
// summary-blocks checkpointing each epoch's state changes, and the pruning
// rule that drops meta-blocks once their sync-transaction is confirmed on
// the mainchain — the mechanism behind ammBoost's state growth control.
package sidechain

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"time"

	"ammboost/internal/crypto/merkle"
	"ammboost/internal/summary"
)

// Ledger errors.
var (
	ErrNotChained      = errors.New("sidechain: block does not extend the ledger")
	ErrEpochMismatch   = errors.New("sidechain: block epoch out of order")
	ErrAlreadyPruned   = errors.New("sidechain: epoch already pruned")
	ErrUnknownEpoch    = errors.New("sidechain: unknown epoch")
	ErrSyncNotAnchored = errors.New("sidechain: cannot prune before sync confirmation")
)

// metaBlockHeaderBytes is the serialized header overhead of a meta-block
// (parent hash, tx root, round/epoch numbers, proposer, commit certificate).
const metaBlockHeaderBytes = 300

// MetaBlock is a temporary sidechain block holding processed transactions.
// It is discarded once the epoch's summary is anchored on the mainchain.
type MetaBlock struct {
	Epoch      uint64
	Round      uint64
	Proposer   string
	ParentHash [32]byte
	TxRoot     [32]byte
	Txs        []*summary.Tx
	SizeBytes  int
	MinedAt    time.Duration
	// CommitVotes is the number of committee votes backing the block
	// (>= 2f+2 for a committed block).
	CommitVotes int
}

// NewMetaBlock assembles a meta-block over txs, computing the Merkle root
// and wire size.
func NewMetaBlock(epoch, round uint64, proposer string, parent [32]byte, txs []*summary.Tx) *MetaBlock {
	leaves := make([][]byte, len(txs))
	size := metaBlockHeaderBytes
	for i, tx := range txs {
		h := tx.Hash()
		leaves[i] = h[:]
		size += tx.Size()
	}
	return &MetaBlock{
		Epoch:      epoch,
		Round:      round,
		Proposer:   proposer,
		ParentHash: parent,
		TxRoot:     merkle.New(leaves).Root(),
		Txs:        txs,
		SizeBytes:  size,
	}
}

// Hash returns the block header hash.
func (b *MetaBlock) Hash() [32]byte {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], b.Epoch)
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], b.Round)
	h.Write(buf[:])
	h.Write([]byte(b.Proposer))
	h.Write(b.ParentHash[:])
	h.Write(b.TxRoot[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// SummaryBlock is a permanent checkpoint: the epoch's summary payload plus
// a commitment to the meta-blocks it summarizes, so pruned history remains
// verifiable against it.
type SummaryBlock struct {
	Epoch     uint64
	Payload   *summary.SyncPayload
	MetaRoot  [32]byte // Merkle root over the epoch's meta-block hashes
	NumMeta   int
	SizeBytes int
	MinedAt   time.Duration
}

// NewSummaryBlock builds the permanent summary over the epoch's meta-blocks.
func NewSummaryBlock(epoch uint64, payload *summary.SyncPayload, metas []*MetaBlock) *SummaryBlock {
	leaves := make([][]byte, len(metas))
	for i, m := range metas {
		h := m.Hash()
		leaves[i] = h[:]
	}
	return &SummaryBlock{
		Epoch:     epoch,
		Payload:   payload,
		MetaRoot:  merkle.New(leaves).Root(),
		NumMeta:   len(metas),
		SizeBytes: payload.SidechainBytes(),
	}
}

// Ledger is the sidechain state: per-epoch meta-blocks (until pruned) and
// the permanent summary chain.
type Ledger struct {
	metasByEpoch map[uint64][]*MetaBlock
	summaries    []*SummaryBlock
	lastHash     [32]byte
	lastEpoch    uint64
	lastRound    uint64
	// retainSummaries bounds the in-memory summary window (0 = all).
	retainSummaries int

	// Growth accounting.
	liveMetaBytes    int
	summaryBytes     int
	prunedBytes      int // total bytes reclaimed by pruning
	peakBytes        int
	totalMetaBlocks  int
	totalTxsRecorded int
}

// NewLedger creates an empty ledger whose genesis references the mainchain
// block carrying TokenBank.
func NewLedger(genesisRef [32]byte) *Ledger {
	return &Ledger{
		metasByEpoch: make(map[uint64][]*MetaBlock),
		lastHash:     genesisRef,
	}
}

// TipHash returns the hash the next meta-block must reference.
func (l *Ledger) TipHash() [32]byte { return l.lastHash }

// AppendMeta verifies chaining and records a committed meta-block.
func (l *Ledger) AppendMeta(b *MetaBlock) error {
	if b.ParentHash != l.lastHash {
		return ErrNotChained
	}
	if b.Epoch < l.lastEpoch {
		return ErrEpochMismatch
	}
	l.metasByEpoch[b.Epoch] = append(l.metasByEpoch[b.Epoch], b)
	l.lastHash = b.Hash()
	l.lastEpoch = b.Epoch
	l.lastRound = b.Round
	l.liveMetaBytes += b.SizeBytes
	l.totalMetaBlocks++
	l.totalTxsRecorded += len(b.Txs)
	if s := l.SizeBytes(); s > l.peakBytes {
		l.peakBytes = s
	}
	return nil
}

// AppendSummary records the permanent summary-block for an epoch.
func (l *Ledger) AppendSummary(sb *SummaryBlock) {
	l.summaries = append(l.summaries, sb)
	l.summaryBytes += sb.SizeBytes
	if s := l.SizeBytes(); s > l.peakBytes {
		l.peakBytes = s
	}
	if l.retainSummaries > 0 && sb.Epoch > uint64(l.retainSummaries) {
		horizon := sb.Epoch - uint64(l.retainSummaries)
		cut := 0
		for cut < len(l.summaries) && l.summaries[cut].Epoch <= horizon {
			cut++
		}
		if cut > 0 {
			// Copy so the dropped prefix's backing array (and its payload
			// pointers) are released; the byte accounting is untouched —
			// the chain itself retains summaries permanently, only this
			// process's window is bounded.
			l.summaries = append([]*SummaryBlock(nil), l.summaries[cut:]...)
		}
	}
}

// SetRetention bounds the in-memory summary history to epochs newer
// than the newest summary minus n (0 keeps everything). The summary
// chain is permanent on-chain; this bounds only what a long-running
// process keeps resident.
func (l *Ledger) SetRetention(n int) { l.retainSummaries = n }

// MetaBlocks returns the (unpruned) meta-blocks of an epoch.
func (l *Ledger) MetaBlocks(epoch uint64) []*MetaBlock {
	return l.metasByEpoch[epoch]
}

// Summaries returns the permanent summary chain.
func (l *Ledger) Summaries() []*SummaryBlock { return l.summaries }

// Prune drops the meta-blocks of an epoch after its sync-transaction is
// anchored. syncConfirmed must reflect mainchain confirmation; pruning
// before that would break public verifiability.
func (l *Ledger) Prune(epoch uint64, syncConfirmed bool) error {
	if !syncConfirmed {
		return ErrSyncNotAnchored
	}
	metas, ok := l.metasByEpoch[epoch]
	if !ok {
		return ErrAlreadyPruned
	}
	for _, m := range metas {
		l.liveMetaBytes -= m.SizeBytes
		l.prunedBytes += m.SizeBytes
	}
	delete(l.metasByEpoch, epoch)
	return nil
}

// SizeBytes is the current retained sidechain size (live meta-blocks plus
// permanent summaries).
func (l *Ledger) SizeBytes() int { return l.liveMetaBytes + l.summaryBytes }

// PeakBytes is the maximum retained size observed.
func (l *Ledger) PeakBytes() int { return l.peakBytes }

// PrunedBytes is the cumulative storage reclaimed by pruning.
func (l *Ledger) PrunedBytes() int { return l.prunedBytes }

// UnprunedBytes is what the chain would occupy had nothing been pruned
// (the "no pruning" ablation baseline).
func (l *Ledger) UnprunedBytes() int { return l.SizeBytes() + l.prunedBytes }

// TotalMetaBlocks is the number of meta-blocks ever committed.
func (l *Ledger) TotalMetaBlocks() int { return l.totalMetaBlocks }

// TotalTxs is the number of transactions ever recorded in meta-blocks.
func (l *Ledger) TotalTxs() int { return l.totalTxsRecorded }

// VerifyTxInEpoch proves tx was recorded in the given (possibly live)
// epoch by checking its Merkle path against a meta-block, and that the
// meta-block is committed under the epoch's summary. Returns an error when
// the transaction cannot be located.
func (l *Ledger) VerifyTxInEpoch(tx *summary.Tx, epoch uint64) error {
	metas := l.metasByEpoch[epoch]
	want := tx.Hash()
	for _, m := range metas {
		for i, btx := range m.Txs {
			if btx.Hash() == want {
				leaves := make([][]byte, len(m.Txs))
				for j, lt := range m.Txs {
					h := lt.Hash()
					leaves[j] = h[:]
				}
				tree := merkle.New(leaves)
				proof, err := tree.Prove(i)
				if err != nil {
					return err
				}
				return merkle.Verify(m.TxRoot, want[:], proof)
			}
		}
	}
	return ErrUnknownEpoch
}
