package pbft

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ammboost/internal/crypto/tsig"
	"ammboost/internal/netsim"
	"ammboost/internal/sim"
)

// cluster wires a 3f+2 committee of replicas over a simulated network.
type cluster struct {
	sim      *sim.Simulator
	net      *netsim.Network
	replicas []*Replica
	decided  map[string][]Decision
}

func newCluster(t *testing.T, f int, timeout time.Duration) *cluster {
	t.Helper()
	n, threshold := Quorum(f)
	s := sim.New()
	net := netsim.New(s, netsim.Config{BaseLatency: 2 * time.Millisecond, BandwidthBps: 1e9})
	members, err := tsig.RunDKG(rand.New(rand.NewSource(99)), threshold, n)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, n)
	pubs := make([]tsig.Point, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("m%d", i)
		pubs[i] = tsig.PublicShare(members[i].Share)
	}
	c := &cluster{sim: s, net: net, decided: make(map[string][]Decision)}
	for i := 0; i < n; i++ {
		id := ids[i]
		cfg := Config{
			ID: id, Index: i, Members: ids, F: f,
			Share: members[i].Share, Group: members[i].Group, PubShares: pubs,
			Timeout: timeout,
			OnDecide: func(d Decision) {
				c.decided[id] = append(c.decided[id], d)
			},
		}
		r, err := NewReplica(s, net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.replicas = append(c.replicas, r)
	}
	return c
}

func (c *cluster) expectAll(seq uint64) {
	for _, r := range c.replicas {
		r.ExpectDecision(seq)
	}
}

func TestQuorumArithmetic(t *testing.T) {
	cases := []struct{ f, n, th int }{{0, 2, 2}, {1, 5, 4}, {2, 8, 6}, {166, 500, 334}}
	for _, c := range cases {
		n, th := Quorum(c.f)
		if n != c.n || th != c.th {
			t.Errorf("Quorum(%d) = (%d,%d), want (%d,%d)", c.f, n, th, c.n, c.th)
		}
		if got := FaultBudget(c.n); got != c.f {
			t.Errorf("FaultBudget(%d) = %d, want %d", c.n, got, c.f)
		}
	}
}

func TestHappyPathDecision(t *testing.T) {
	c := newCluster(t, 1, 3*time.Second)
	payload := "block-1"
	digest := DigestOf([]byte(payload))
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, payload, digest, 1000); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(2 * time.Second)
	for _, r := range c.replicas {
		ds := c.decided[r.cfg.ID]
		if len(ds) != 1 {
			t.Fatalf("%s decided %d blocks", r.cfg.ID, len(ds))
		}
		if ds[0].Payload != payload || ds[0].Seq != 1 {
			t.Errorf("%s decided %v", r.cfg.ID, ds[0])
		}
		// The commit certificate is a valid threshold signature anyone
		// can verify against the committee key.
		if err := tsig.Verify(r.cfg.Group, digestDomain("com", 0, 1, digest), ds[0].CommitCert); err != nil {
			t.Errorf("commit cert invalid: %v", err)
		}
	}
}

func TestNonLeaderCannotPropose(t *testing.T) {
	c := newCluster(t, 1, 3*time.Second)
	if err := c.replicas[1].Propose(1, "x", DigestOf([]byte("x")), 10); err != ErrNotLeader {
		t.Errorf("want ErrNotLeader, got %v", err)
	}
}

func TestMultipleSequences(t *testing.T) {
	c := newCluster(t, 1, 3*time.Second)
	for seq := uint64(1); seq <= 5; seq++ {
		payload := fmt.Sprintf("block-%d", seq)
		c.expectAll(seq)
		if err := c.replicas[0].Propose(seq, payload, DigestOf([]byte(payload)), 500); err != nil {
			t.Fatal(err)
		}
		c.sim.RunUntil(c.sim.Now() + 2*time.Second)
	}
	for id, ds := range c.decided {
		if len(ds) != 5 {
			t.Errorf("%s decided %d of 5", id, len(ds))
		}
	}
}

func TestSilentLeaderTriggersViewChange(t *testing.T) {
	c := newCluster(t, 1, 500*time.Millisecond)
	var becameLeader bool
	c.replicas[1].cfg.OnBecomeLeader = func(view int) {
		becameLeader = true
		// New leader re-proposes the pending block.
		payload := "recovered-block"
		if err := c.replicas[1].Propose(1, payload, DigestOf([]byte(payload)), 100); err != nil {
			t.Errorf("re-propose: %v", err)
		}
	}
	// Leader m0 never proposes; replicas expect seq 1.
	c.expectAll(1)
	c.sim.RunUntil(5 * time.Second)
	if !becameLeader {
		t.Fatal("view change did not promote the next leader")
	}
	for _, r := range c.replicas {
		if r.View() == 0 {
			t.Errorf("%s still in view 0", r.cfg.ID)
		}
		ds := c.decided[r.cfg.ID]
		if len(ds) != 1 || ds[0].Payload != "recovered-block" {
			t.Errorf("%s decided %v", r.cfg.ID, ds)
		}
	}
}

func TestInvalidProposalTriggersViewChange(t *testing.T) {
	c := newCluster(t, 1, 2*time.Second)
	for _, r := range c.replicas {
		r.cfg.Validate = func(p any) bool { return p != "poison" }
	}
	var newLeaderView int
	c.replicas[1].cfg.OnBecomeLeader = func(view int) { newLeaderView = view }
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, "poison", DigestOf([]byte("poison")), 100); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(5 * time.Second)
	if newLeaderView == 0 {
		t.Fatal("invalid proposal should force a view change")
	}
	for id, ds := range c.decided {
		if len(ds) != 0 {
			t.Errorf("%s decided the poisoned block: %v", id, ds)
		}
	}
}

func TestCrashFaultToleratedWithinBudget(t *testing.T) {
	c := newCluster(t, 1, 3*time.Second) // n=5, tolerates 1 fault
	// Crash one non-leader replica.
	c.net.Unregister("m4")
	payload := "block-despite-crash"
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, payload, DigestOf([]byte(payload)), 100); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(2 * time.Second)
	for _, id := range []string{"m0", "m1", "m2", "m3"} {
		if len(c.decided[id]) != 1 {
			t.Errorf("%s did not decide", id)
		}
	}
}

func TestTooManyCrashesStallsSafely(t *testing.T) {
	c := newCluster(t, 1, time.Second)
	// Crash two of five (> f=1): no quorum, no decision — but no bogus
	// decision either (safety over liveness).
	c.net.Unregister("m3")
	c.net.Unregister("m4")
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, "stalled", DigestOf([]byte("stalled")), 100); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(5 * time.Second)
	for id, ds := range c.decided {
		if len(ds) != 0 {
			t.Errorf("%s decided without quorum: %v", id, ds)
		}
	}
}

func TestLargerCommittee(t *testing.T) {
	c := newCluster(t, 2, 3*time.Second) // n=8
	payload := "f2-block"
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, payload, DigestOf([]byte(payload)), 2048); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(3 * time.Second)
	count := 0
	for _, ds := range c.decided {
		if len(ds) == 1 && ds[0].Payload == payload {
			count++
		}
	}
	if count != 8 {
		t.Errorf("%d of 8 replicas decided", count)
	}
}

func TestModelMatchesTable12Shape(t *testing.T) {
	m := DefaultModel()
	// Paper Table XII: committee size → agreement seconds.
	paper := map[int]float64{100: 0.99, 250: 2.95, 500: 6.51, 750: 14.32, 1000: 22.24}
	for n, want := range paper {
		got := m.AgreementTime(n, 1<<20).Seconds()
		// Within 35% of the measured point and strictly monotone below.
		if got < want*0.65 || got > want*1.35 {
			t.Errorf("AgreementTime(%d) = %.2fs, paper %.2fs", n, got, want)
		}
	}
	if m.AgreementTime(100, 1<<20) >= m.AgreementTime(1000, 1<<20) {
		t.Error("agreement time must grow with committee size")
	}
	// Block size matters little (tree dissemination), mirroring Table
	// VIII's viability of 2 MB blocks at 7 s rounds.
	small := m.AgreementTime(500, 1<<19)
	large := m.AgreementTime(500, 2<<20)
	if large-small > time.Second {
		t.Errorf("dissemination dominates: %s vs %s", small, large)
	}
}

func TestModelViewChangeCheaperThanAgreement(t *testing.T) {
	m := DefaultModel()
	if m.ViewChangeTime(500) >= m.AgreementTime(500, 1<<20) {
		t.Error("view change should cost less than full agreement")
	}
}

func BenchmarkAgreementF1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		net := netsim.New(s, netsim.DefaultConfig())
		members, _ := tsig.RunDKG(rand.New(rand.NewSource(1)), 4, 5)
		ids := []string{"a", "b", "c", "d", "e"}
		pubs := make([]tsig.Point, 5)
		for j := range pubs {
			pubs[j] = tsig.PublicShare(members[j].Share)
		}
		var reps []*Replica
		for j := 0; j < 5; j++ {
			r, _ := NewReplica(s, net, Config{ID: ids[j], Index: j, Members: ids, F: 1,
				Share: members[j].Share, Group: members[j].Group, PubShares: pubs})
			reps = append(reps, r)
		}
		_ = reps[0].Propose(1, "bench", DigestOf([]byte("bench")), 1024)
		s.Run()
	}
}
