package pbft

import (
	"math"
	"time"
)

// Model is the analytic agreement-time model used by the experiment
// harness for large committees. Agreement time decomposes into:
//
//   - proposal dissemination down a CoSi communication tree:
//     depth(n) × (8·blockBytes/bandwidth + hop latency), and
//   - coordination/crypto: C0 + C1·n + C2·n², the linear term covering
//     per-member share handling and the quadratic term the Lagrange
//     aggregation work, calibrated against the paper's Table XII
//     measurements (0.99 s at n=100 … 22.24 s at n=1000 with 1 MB blocks).
type Model struct {
	C0 time.Duration // fixed round-trip floor
	C1 time.Duration // per-member cost
	C2 time.Duration // per-member² cost
	// TreeFanout is the CoSi dissemination tree fanout.
	TreeFanout int
	// BandwidthBps and HopLatency parameterize dissemination.
	BandwidthBps float64
	HopLatency   time.Duration
}

// DefaultModel returns the Table XII calibration on the paper's 1 Gbps
// cluster.
func DefaultModel() Model {
	return Model{
		C0:           200 * time.Millisecond,
		C1:           4400 * time.Microsecond,
		C2:           16200 * time.Nanosecond,
		TreeFanout:   16,
		BandwidthBps: 1e9,
		HopLatency:   2 * time.Millisecond,
	}
}

// TreeDepth returns the dissemination tree depth for n members.
func (m Model) TreeDepth(n int) int {
	if n <= 1 {
		return 1
	}
	f := float64(m.TreeFanout)
	if f < 2 {
		f = 2
	}
	return int(math.Ceil(math.Log(float64(n)) / math.Log(f)))
}

// AgreementTime returns the modeled time for a committee of n members to
// finalize a block of blockBytes.
func (m Model) AgreementTime(n int, blockBytes int) time.Duration {
	if n <= 0 {
		return 0
	}
	ser := time.Duration(float64(blockBytes*8) / m.BandwidthBps * float64(time.Second))
	dissemination := time.Duration(m.TreeDepth(n)) * (ser + m.HopLatency)
	crypto := m.C0 + time.Duration(n)*m.C1 + time.Duration(n*n)*m.C2
	return dissemination + crypto
}

// ViewChangeTime returns the modeled cost of one view change: a round of
// view-change votes plus the new-view announcement (two vote-collection
// phases without payload dissemination).
func (m Model) ViewChangeTime(n int) time.Duration {
	return m.C0 + time.Duration(n)*m.C1
}
