// Package pbft implements the sidechain's leader-based PBFT consensus in
// the collective-signing (CoSi) style the paper adopts: the leader proposes
// a block, collects threshold-signature shares over two phases (prepare,
// commit), and broadcasts the resulting quorum certificates. A committee of
// n = 3f+2 members tolerates f Byzantine members with a 2f+2 quorum.
//
// Two fidelities are provided:
//
//   - Replica: the full message-level state machine (propose / prepare /
//     commit / decide, plus view change on invalid or silent leaders),
//     exercised with real threshold crypto by the functional tests and the
//     failover example.
//   - Model: the analytic agreement-time cost model calibrated to the
//     paper's Table XII, used by the experiment harness to advance the
//     virtual clock for 500–1000-member committees without paying the
//     wall-clock cost of hundreds of thousands of signature operations.
package pbft

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"ammboost/internal/crypto/tsig"
	"ammboost/internal/netsim"
	"ammboost/internal/sim"
)

// Protocol errors.
var (
	ErrNotLeader = errors.New("pbft: replica is not the current leader")
	ErrBadQuorum = errors.New("pbft: committee size must be 3f+2")
)

// Quorum returns (n, threshold) for a fault budget f: n = 3f+2 members,
// 2f+2 votes to decide.
func Quorum(f int) (n, threshold int) { return 3*f + 2, 2*f + 2 }

// FaultBudget returns the f tolerated by a committee of size n (largest f
// with 3f+2 <= n).
func FaultBudget(n int) int {
	if n < 2 {
		return 0
	}
	return (n - 2) / 3
}

// Message kinds.
type msgKind int

const (
	msgPropose msgKind = iota + 1
	msgPrepareShare
	msgPrepareCert
	msgCommitShare
	msgDecide
	msgViewChange
)

// Msg is the wire message exchanged by replicas.
type Msg struct {
	Kind    msgKind
	View    int
	Seq     uint64
	Digest  [32]byte
	Payload any // proposal payload (propose only)
	Size    int // modeled wire size
	Share   tsig.PartialSig
	Cert    tsig.Point
}

// Decision is a finalized consensus instance.
type Decision struct {
	Seq        uint64
	View       int
	Digest     [32]byte
	Payload    any
	CommitCert tsig.Point
	DecidedAt  time.Duration
}

// Config wires a replica into its committee.
type Config struct {
	ID        string
	Index     int      // position in the committee (0 = first leader)
	Members   []string // committee member IDs in leader-rotation order
	F         int      // fault budget; committee size must be 3f+2
	Share     tsig.Share
	Group     tsig.GroupKey
	PubShares []tsig.Point // members' public share commitments, by index

	// Validate vets a proposed payload; rejecting triggers a view change.
	Validate func(payload any) bool
	// Digest recomputes the digest a payload should commit to. When set,
	// a proposal whose Digest field does not match is treated as a
	// Byzantine leader (corrupt or equivocating digest) and triggers an
	// immediate view change. ok=false means the payload's digest cannot
	// be recomputed and the check is skipped.
	Digest func(payload any) (digest [32]byte, ok bool)
	// OnDecide delivers a finalized block.
	OnDecide func(d Decision)
	// OnBecomeLeader fires when a view change makes this replica leader;
	// the driver should re-propose the pending block.
	OnBecomeLeader func(view int)

	// Timeout is the view-change timeout armed by ExpectDecision. The
	// timer re-arms while the sequence is undecided, so a committee cut
	// off by a partition keeps re-broadcasting view-change votes and
	// re-achieves quorum once the partition heals.
	Timeout time.Duration

	// Behavior injects an adversarial strategy (zero value = honest).
	Behavior Byzantine
}

// Replica is one committee member's consensus state machine.
type Replica struct {
	cfg Config
	sim *sim.Simulator
	net *netsim.Network

	view      int
	decided   map[uint64]bool
	delivered map[uint64]Decision

	// Leader state for the in-flight sequence.
	proposal      any
	proposalSeq   uint64
	proposalDig   [32]byte
	prepareShares map[int]tsig.PartialSig
	commitShares  map[int]tsig.PartialSig
	prepareDone   bool

	// Follower bookkeeping.
	viewChangeVotes map[int]map[int]bool // view -> voter index set
	expectTimers    map[uint64]*sim.Timer
	stopped         bool

	// Stats.
	MsgsHandled int
}

// NewReplica registers a replica on the network.
func NewReplica(s *sim.Simulator, net *netsim.Network, cfg Config) (*Replica, error) {
	wantN, _ := Quorum(cfg.F)
	if len(cfg.Members) != wantN {
		return nil, fmt.Errorf("%w: %d members for f=%d (want %d)", ErrBadQuorum, len(cfg.Members), cfg.F, wantN)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * time.Second
	}
	r := &Replica{
		cfg:             cfg,
		sim:             s,
		net:             net,
		decided:         make(map[uint64]bool),
		delivered:       make(map[uint64]Decision),
		prepareShares:   make(map[int]tsig.PartialSig),
		commitShares:    make(map[int]tsig.PartialSig),
		viewChangeVotes: make(map[int]map[int]bool),
		expectTimers:    make(map[uint64]*sim.Timer),
	}
	net.Register(cfg.ID, func(from string, payload any) {
		if m, ok := payload.(*Msg); ok {
			r.handle(from, m)
		}
	})
	return r, nil
}

// View returns the replica's current view.
func (r *Replica) View() int { return r.view }

// SetOnBecomeLeader replaces the leadership-promotion callback (drivers
// wire it after constructing the committee).
func (r *Replica) SetOnBecomeLeader(fn func(view int)) { r.cfg.OnBecomeLeader = fn }

// SetValidate replaces the proposal validator.
func (r *Replica) SetValidate(fn func(payload any) bool) { r.cfg.Validate = fn }

// Behavior returns the replica's injected adversarial strategy.
func (r *Replica) Behavior() Byzantine { return r.cfg.Behavior }

// Stop retires the replica: pending view-change timers are cancelled and
// incoming messages are ignored. Drivers call it at epoch end (or on a
// consensus-stall halt) so re-arming timers cannot keep the simulator
// alive forever.
func (r *Replica) Stop() {
	r.stopped = true
	for seq, t := range r.expectTimers {
		t.Cancel()
		delete(r.expectTimers, seq)
	}
}

// IsLeader reports whether this replica leads the current view.
func (r *Replica) IsLeader() bool {
	return r.cfg.Members[r.view%len(r.cfg.Members)] == r.cfg.ID
}

// LeaderID returns the current view's leader.
func (r *Replica) LeaderID() string {
	return r.cfg.Members[r.view%len(r.cfg.Members)]
}

// Decided reports whether seq was finalized, with its decision.
func (r *Replica) Decided(seq uint64) (Decision, bool) {
	d, ok := r.delivered[seq]
	return d, ok
}

func digestDomain(phase string, view int, seq uint64, digest [32]byte) []byte {
	out := make([]byte, 0, len(phase)+12+32)
	out = append(out, phase...)
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(view))
	out = append(out, buf[:4]...)
	binary.BigEndian.PutUint64(buf[:], seq)
	out = append(out, buf[:8]...)
	out = append(out, digest[:]...)
	return out
}

// Propose starts agreement on payload at seq. Only the current leader may
// call it; the digest commits to the payload content. A Byzantine leader
// executes its injected strategy instead of the honest broadcast.
func (r *Replica) Propose(seq uint64, payload any, digest [32]byte, size int) error {
	if !r.IsLeader() {
		return ErrNotLeader
	}
	if r.stopped {
		return nil
	}
	switch r.cfg.Behavior {
	case Silent:
		// Leader stays mute; followers' timers force a view change.
		return nil
	case CorruptDigest:
		digest[0] ^= 0xff
	case Equivocate:
		r.equivocate(seq, payload, digest, size)
		return nil
	case DelayedEquivocate:
		// Burn half the view-change window in silence first, then run the
		// doomed split-digest round; the committee's timers still fire on
		// schedule, so the view change lands at the same deterministic
		// instant — but the replicas spend the wait processing a round
		// that can never gather a quorum.
		view := r.view
		r.sim.After(r.cfg.Timeout/2, func() {
			if r.stopped || r.decided[seq] || r.view != view {
				return
			}
			r.equivocate(seq, payload, digest, size)
		})
		return nil
	}
	r.proposal = payload
	r.proposalSeq = seq
	r.proposalDig = digest
	r.prepareShares = make(map[int]tsig.PartialSig)
	r.commitShares = make(map[int]tsig.PartialSig)
	r.prepareDone = false
	m := &Msg{Kind: msgPropose, View: r.view, Seq: seq, Digest: digest, Payload: payload, Size: size}
	r.net.Broadcast(r.cfg.ID, size, m)
	// Process own proposal locally (leader's prepare share).
	r.handle(r.cfg.ID, m)
	return nil
}

// equivocate sends one digest to half the committee and a conflicting
// digest to the other half; neither can gather a 2f+2 prepare quorum, so
// the round stalls into a view change. Shared by the Equivocate and
// DelayedEquivocate leader strategies.
func (r *Replica) equivocate(seq uint64, payload any, digest [32]byte, size int) {
	r.proposal = payload
	r.proposalSeq = seq
	r.proposalDig = digest
	r.prepareShares = make(map[int]tsig.PartialSig)
	r.commitShares = make(map[int]tsig.PartialSig)
	r.prepareDone = false
	flipped := digest
	flipped[0] ^= 0xff
	for i, id := range r.cfg.Members {
		if id == r.cfg.ID {
			continue
		}
		d := digest
		if i >= len(r.cfg.Members)/2 {
			d = flipped
		}
		m := &Msg{Kind: msgPropose, View: r.view, Seq: seq, Digest: d, Payload: payload, Size: size}
		r.net.Send(r.cfg.ID, id, size, m)
	}
	r.handle(r.cfg.ID, &Msg{Kind: msgPropose, View: r.view, Seq: seq, Digest: digest, Payload: payload, Size: size})
}

// ExpectDecision arms the view-change timeout for seq: if no decision
// arrives within the configured timeout, the replica votes to change view
// and re-arms, so it keeps demanding progress (and keeps re-broadcasting
// its vote, which is what lets a healed partition regain quorum from
// votes that were dropped mid-split). The driver calls this on every
// replica when a round begins and bounds the retries with its own
// watchdog plus Stop.
func (r *Replica) ExpectDecision(seq uint64) {
	if r.decided[seq] || r.stopped {
		return
	}
	if t := r.expectTimers[seq]; t != nil {
		t.Cancel()
	}
	r.expectTimers[seq] = r.sim.After(r.cfg.Timeout, func() {
		if r.decided[seq] || r.stopped {
			return
		}
		r.voteViewChange(r.view + 1)
		r.ExpectDecision(seq)
	})
}

func (r *Replica) voteViewChange(newView int) {
	if newView <= r.view {
		return
	}
	m := &Msg{Kind: msgViewChange, View: newView, Size: 96}
	r.net.Broadcast(r.cfg.ID, m.Size, m)
	r.recordViewChange(r.cfg.Index, newView)
}

func (r *Replica) recordViewChange(voter, newView int) {
	if newView <= r.view {
		return
	}
	votes := r.viewChangeVotes[newView]
	if votes == nil {
		votes = make(map[int]bool)
		r.viewChangeVotes[newView] = votes
	}
	votes[voter] = true
	_, threshold := Quorum(r.cfg.F)
	if len(votes) >= threshold {
		r.view = newView
		delete(r.viewChangeVotes, newView)
		if r.IsLeader() && r.cfg.OnBecomeLeader != nil {
			r.cfg.OnBecomeLeader(newView)
		}
	}
}

func (r *Replica) handle(from string, m *Msg) {
	if r.stopped {
		return
	}
	r.MsgsHandled++
	switch m.Kind {
	case msgPropose:
		r.onPropose(from, m)
	case msgPrepareShare:
		r.onPrepareShare(m)
	case msgPrepareCert:
		r.onPrepareCert(from, m)
	case msgCommitShare:
		r.onCommitShare(m)
	case msgDecide:
		r.onDecide(from, m)
	case msgViewChange:
		idx := r.indexOf(from)
		if idx >= 0 {
			r.recordViewChange(idx, m.View)
		}
	}
}

func (r *Replica) indexOf(id string) int {
	for i, m := range r.cfg.Members {
		if m == id {
			return i
		}
	}
	return -1
}

func (r *Replica) onPropose(from string, m *Msg) {
	if m.View != r.view || r.decided[m.Seq] {
		return
	}
	if from != r.LeaderID() {
		return // only the view's leader may propose
	}
	if r.cfg.Validate != nil && !r.cfg.Validate(m.Payload) {
		// Invalid proposal: demand a new leader immediately.
		r.voteViewChange(r.view + 1)
		return
	}
	if r.cfg.Digest != nil {
		if want, ok := r.cfg.Digest(m.Payload); ok && want != m.Digest {
			// The digest does not commit to the payload: a corrupt or
			// equivocating leader. Refuse to sign and demand a new one.
			r.voteViewChange(r.view + 1)
			return
		}
	}
	if t := r.expectTimers[m.Seq]; t == nil {
		r.ExpectDecision(m.Seq)
	}
	share := tsig.PartialSign(r.cfg.Share, digestDomain("prep", m.View, m.Seq, m.Digest))
	reply := &Msg{Kind: msgPrepareShare, View: m.View, Seq: m.Seq, Digest: m.Digest, Share: share, Size: 160}
	if from == r.cfg.ID {
		r.onPrepareShare(reply)
		return
	}
	r.net.Send(r.cfg.ID, from, reply.Size, reply)
}

func (r *Replica) onPrepareShare(m *Msg) {
	if !r.IsLeader() || m.View != r.view || m.Seq != r.proposalSeq || r.prepareDone {
		return
	}
	if m.Digest != r.proposalDig {
		return
	}
	// Verify the share against the member's public commitment before
	// counting it (Byzantine members cannot poison the aggregate).
	if len(r.cfg.PubShares) > m.Share.Index-1 && m.Share.Index >= 1 {
		pk := r.cfg.PubShares[m.Share.Index-1]
		if err := tsig.VerifyPartial(pk, digestDomain("prep", m.View, m.Seq, m.Digest), m.Share); err != nil {
			return
		}
	}
	r.prepareShares[m.Share.Index] = m.Share
	_, threshold := Quorum(r.cfg.F)
	if len(r.prepareShares) < threshold {
		return
	}
	r.prepareDone = true
	shares := make([]tsig.PartialSig, 0, threshold)
	for _, s := range r.prepareShares {
		shares = append(shares, s)
		if len(shares) == threshold {
			break
		}
	}
	cert, err := tsig.Combine(r.cfg.Group, shares)
	if err != nil {
		return
	}
	cm := &Msg{Kind: msgPrepareCert, View: m.View, Seq: m.Seq, Digest: m.Digest, Cert: cert, Size: 128}
	r.net.Broadcast(r.cfg.ID, cm.Size, cm)
	r.onPrepareCert(r.cfg.ID, cm)
}

func (r *Replica) onPrepareCert(from string, m *Msg) {
	if m.View != r.view || r.decided[m.Seq] {
		return
	}
	if err := tsig.Verify(r.cfg.Group, digestDomain("prep", m.View, m.Seq, m.Digest), m.Cert); err != nil {
		return
	}
	if r.cfg.Behavior == VoteStall {
		return // prepared, then withholds its commit share
	}
	share := tsig.PartialSign(r.cfg.Share, digestDomain("com", m.View, m.Seq, m.Digest))
	reply := &Msg{Kind: msgCommitShare, View: m.View, Seq: m.Seq, Digest: m.Digest, Share: share, Size: 160}
	leader := r.LeaderID()
	if leader == r.cfg.ID {
		r.onCommitShare(reply)
		return
	}
	r.net.Send(r.cfg.ID, leader, reply.Size, reply)
}

func (r *Replica) onCommitShare(m *Msg) {
	if !r.IsLeader() || m.View != r.view || m.Seq != r.proposalSeq || r.decided[m.Seq] {
		return
	}
	if m.Digest != r.proposalDig {
		return
	}
	if len(r.cfg.PubShares) > m.Share.Index-1 && m.Share.Index >= 1 {
		pk := r.cfg.PubShares[m.Share.Index-1]
		if err := tsig.VerifyPartial(pk, digestDomain("com", m.View, m.Seq, m.Digest), m.Share); err != nil {
			return
		}
	}
	r.commitShares[m.Share.Index] = m.Share
	_, threshold := Quorum(r.cfg.F)
	if len(r.commitShares) < threshold {
		return
	}
	shares := make([]tsig.PartialSig, 0, threshold)
	for _, s := range r.commitShares {
		shares = append(shares, s)
		if len(shares) == threshold {
			break
		}
	}
	cert, err := tsig.Combine(r.cfg.Group, shares)
	if err != nil {
		return
	}
	dm := &Msg{Kind: msgDecide, View: m.View, Seq: m.Seq, Digest: m.Digest, Cert: cert,
		Payload: r.proposal, Size: 128}
	r.net.Broadcast(r.cfg.ID, dm.Size, dm)
	r.onDecide(r.cfg.ID, dm)
}

func (r *Replica) onDecide(from string, m *Msg) {
	if r.decided[m.Seq] {
		return
	}
	if err := tsig.Verify(r.cfg.Group, digestDomain("com", m.View, m.Seq, m.Digest), m.Cert); err != nil {
		return
	}
	r.decided[m.Seq] = true
	if t := r.expectTimers[m.Seq]; t != nil {
		t.Cancel()
		delete(r.expectTimers, m.Seq)
	}
	d := Decision{Seq: m.Seq, View: m.View, Digest: m.Digest, Payload: m.Payload,
		CommitCert: m.Cert, DecidedAt: r.sim.Now()}
	r.delivered[m.Seq] = d
	if r.cfg.OnDecide != nil {
		r.cfg.OnDecide(d)
	}
}

// DigestOf hashes an arbitrary byte payload for proposals.
func DigestOf(b []byte) [32]byte { return sha256.Sum256(b) }
