package pbft

// Byzantine selects a replica's adversarial behavior. The zero value is
// honest; the fault-injection layer assigns behaviors per replica so chaos
// schedules can mix them inside one committee (at most f replicas may be
// non-honest for the committee to stay live).
type Byzantine int

const (
	// Honest follows the protocol.
	Honest Byzantine = iota
	// Silent never proposes when leader; followers' ExpectDecision timers
	// fire and the committee changes view.
	Silent
	// CorruptDigest proposes a digest that does not commit to the payload
	// (one bit flipped). Replicas configured with a Digest hook detect the
	// mismatch and demand a new leader immediately; without the hook the
	// corrupt digest would finalize, which is exactly the attack the hook
	// closes.
	CorruptDigest
	// Equivocate sends one digest to half the committee and a conflicting
	// digest to the other half. Neither digest can gather a 2f+2 prepare
	// quorum, so the round stalls into a view change.
	Equivocate
	// VoteStall participates in the prepare phase but withholds its commit
	// share (vote-then-stall). Up to f stalling replicas cost nothing —
	// the quorum completes without them; more would stall the round.
	VoteStall
	// DelayedEquivocate sits on the proposal for half the view-change
	// window, then equivocates like Equivocate. The committee wastes the
	// silent wait AND the doomed split-digest round before its timers
	// force a view change — strictly more time-burning than Silent or
	// Equivocate alone, the worst-case single-leader delay strategy.
	DelayedEquivocate
)

// String names the behavior for logs and experiment tables.
func (b Byzantine) String() string {
	switch b {
	case Honest:
		return "honest"
	case Silent:
		return "silent"
	case CorruptDigest:
		return "corrupt-digest"
	case Equivocate:
		return "equivocate"
	case VoteStall:
		return "vote-stall"
	case DelayedEquivocate:
		return "delayed-equivocate"
	default:
		return "unknown"
	}
}
