package pbft

import (
	"testing"
	"time"

	"ammboost/internal/netsim"
)

// digestHook recomputes the digest for the string payloads the tests use.
func digestHook(p any) ([32]byte, bool) {
	s, ok := p.(string)
	if !ok {
		return [32]byte{}, false
	}
	return DigestOf([]byte(s)), true
}

// reproposeOnPromotion wires every replica to re-propose payload honestly
// when a view change promotes it.
func (c *cluster) reproposeOnPromotion(t *testing.T, seq uint64, payload string) {
	t.Helper()
	for _, r := range c.replicas {
		r := r
		r.SetOnBecomeLeader(func(view int) {
			if r.cfg.Behavior != Honest {
				return
			}
			if err := r.Propose(seq, payload, DigestOf([]byte(payload)), 100); err != nil {
				t.Errorf("re-propose: %v", err)
			}
		})
	}
}

// assertAllDecided checks every replica finalized exactly payload at seq.
func (c *cluster) assertAllDecided(t *testing.T, seq uint64, payload string) {
	t.Helper()
	for _, r := range c.replicas {
		ds := c.decided[r.cfg.ID]
		if len(ds) != 1 || ds[0].Payload != payload || ds[0].Seq != seq {
			t.Errorf("%s decided %v, want %q at seq %d", r.cfg.ID, ds, payload, seq)
		}
	}
}

func TestCorruptDigestLeaderDeposed(t *testing.T) {
	c := newCluster(t, 1, 500*time.Millisecond)
	for _, r := range c.replicas {
		r.cfg.Digest = digestHook
	}
	c.replicas[0].cfg.Behavior = CorruptDigest
	c.reproposeOnPromotion(t, 1, "honest-block")
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, "corrupt-block", DigestOf([]byte("corrupt-block")), 100); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(5 * time.Second)
	c.assertAllDecided(t, 1, "honest-block")
	for _, r := range c.replicas {
		if r.View() == 0 {
			t.Errorf("%s never left the corrupt leader's view", r.cfg.ID)
		}
	}
}

func TestCorruptDigestFinalizesWithoutHook(t *testing.T) {
	// Control: without the Digest hook the corrupt digest DOES finalize —
	// the hook is what closes the attack.
	c := newCluster(t, 1, 500*time.Millisecond)
	c.replicas[0].cfg.Behavior = CorruptDigest
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, "payload", DigestOf([]byte("payload")), 100); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(2 * time.Second)
	want := DigestOf([]byte("payload"))
	want[0] ^= 0xff
	ds := c.decided["m1"]
	if len(ds) != 1 || ds[0].Digest != want {
		t.Fatalf("expected the corrupt digest to finalize unchecked, got %v", ds)
	}
}

func TestEquivocatingLeaderDeposed(t *testing.T) {
	c := newCluster(t, 1, 500*time.Millisecond)
	for _, r := range c.replicas {
		r.cfg.Digest = digestHook
	}
	c.replicas[0].cfg.Behavior = Equivocate
	c.reproposeOnPromotion(t, 1, "converged-block")
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, "converged-block", DigestOf([]byte("converged-block")), 100); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(5 * time.Second)
	// Safety: no replica finalized either equivocating digest; the new
	// leader's block is the only decision.
	c.assertAllDecided(t, 1, "converged-block")
	for _, r := range c.replicas {
		if ds := c.decided[r.cfg.ID]; len(ds) == 1 && ds[0].View == 0 {
			t.Errorf("%s decided in the equivocator's view", r.cfg.ID)
		}
	}
}

// TestDelayedEquivocatorDeposed pins the delayed-equivocation strategy:
// the leader sits silent for half the view-change window, then splits the
// committee with conflicting digests. Safety holds (neither digest
// finalizes), the committee still deposes the leader on its regular
// timers, and the decision lands strictly later than under an immediate
// equivocator — the delay is the point of the strategy.
func TestDelayedEquivocatorDeposed(t *testing.T) {
	decideAt := func(b Byzantine) (time.Duration, int) {
		c := newCluster(t, 1, 500*time.Millisecond)
		for _, r := range c.replicas {
			r.cfg.Digest = digestHook
		}
		c.replicas[0].cfg.Behavior = b
		c.reproposeOnPromotion(t, 1, "converged-block")
		c.expectAll(1)
		if err := c.replicas[0].Propose(1, "converged-block", DigestOf([]byte("converged-block")), 100); err != nil {
			t.Fatal(err)
		}
		c.sim.RunUntil(5 * time.Second)
		c.assertAllDecided(t, 1, "converged-block")
		for _, r := range c.replicas {
			if ds := c.decided[r.cfg.ID]; len(ds) == 1 && ds[0].View == 0 {
				t.Errorf("%s decided in the equivocator's view", r.cfg.ID)
			}
		}
		return c.decided["m1"][0].DecidedAt, c.replicas[1].View()
	}
	delayedAt, _ := decideAt(DelayedEquivocate)
	immediateAt, _ := decideAt(Equivocate)
	if delayedAt < immediateAt {
		t.Errorf("delayed equivocation decided at %s, before immediate equivocation's %s",
			delayedAt, immediateAt)
	}
	// Determinism: the same strategy reruns to the same decision instant.
	again, _ := decideAt(DelayedEquivocate)
	if again != delayedAt {
		t.Errorf("delayed equivocation decision instant diverged: %s vs %s", again, delayedAt)
	}
}

func TestVoteStallWithinBudgetDecides(t *testing.T) {
	c := newCluster(t, 1, time.Second)
	c.replicas[4].cfg.Behavior = VoteStall // f=1 stalling follower
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, "despite-stall", DigestOf([]byte("despite-stall")), 100); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(2 * time.Second)
	c.assertAllDecided(t, 1, "despite-stall")
	if c.replicas[0].View() != 0 {
		t.Error("a within-budget stall should not force a view change")
	}
}

func TestVoteStallBeyondBudgetStallsSafely(t *testing.T) {
	c := newCluster(t, 1, 300*time.Millisecond)
	c.replicas[3].cfg.Behavior = VoteStall
	c.replicas[4].cfg.Behavior = VoteStall // 2 > f=1: commit quorum unreachable
	c.expectAll(1)
	if err := c.replicas[0].Propose(1, "never", DigestOf([]byte("never")), 100); err != nil {
		t.Fatal(err)
	}
	c.sim.RunUntil(3 * time.Second)
	for id, ds := range c.decided {
		if len(ds) != 0 {
			t.Errorf("%s decided without a commit quorum: %v", id, ds)
		}
	}
}

// TestPartitionHealRegainsQuorum pins the satellite requirement: a
// committee that lost quorum to a partition re-achieves it after Heal —
// deterministically, so two identical runs finalize at the same simulated
// instant in the same view.
func TestPartitionHealRegainsQuorum(t *testing.T) {
	run := func() (map[string]Decision, int) {
		c := newCluster(t, 1, 300*time.Millisecond)
		c.net.Install(&netsim.FaultSchedule{Partitions: []netsim.PartitionWindow{{
			At: 10 * time.Millisecond, Heal: 1500 * time.Millisecond,
			SideA: []string{"m0", "m1"}, SideB: []string{"m2", "m3", "m4"},
		}}})
		c.reproposeOnPromotion(t, 1, "post-heal-block")
		c.expectAll(1)
		c.sim.At(20*time.Millisecond, func() {
			_ = c.replicas[0].Propose(1, "pre-partition-block", DigestOf([]byte("pre-partition-block")), 100)
		})
		c.sim.RunUntil(5 * time.Second)
		out := make(map[string]Decision)
		for id, ds := range c.decided {
			if len(ds) != 1 {
				t.Fatalf("%s decided %d blocks", id, len(ds))
			}
			out[id] = ds[0]
		}
		return out, c.replicas[0].View()
	}
	first, view1 := run()
	if len(first) != 5 {
		t.Fatalf("only %d of 5 replicas decided after heal", len(first))
	}
	for id, d := range first {
		if d.DecidedAt < 1500*time.Millisecond {
			t.Errorf("%s decided at %s, inside the partition window", id, d.DecidedAt)
		}
	}
	second, view2 := run()
	if view1 != view2 {
		t.Errorf("views diverged across identical runs: %d vs %d", view1, view2)
	}
	for id, d := range first {
		s := second[id]
		// Field-wise compare: CommitCert holds big.Int pointers, so struct
		// equality would compare identity, not value.
		if s.Seq != d.Seq || s.View != d.View || s.Digest != d.Digest ||
			s.DecidedAt != d.DecidedAt || s.Payload != d.Payload ||
			s.CommitCert.X.Cmp(d.CommitCert.X) != 0 {
			t.Errorf("%s decision diverged: %+v vs %+v", id, d, s)
		}
	}
}

// TestStopQuiescesReplica pins Stop: re-arming timers are cancelled so the
// simulator drains, and late messages are ignored.
func TestStopQuiescesReplica(t *testing.T) {
	c := newCluster(t, 1, 100*time.Millisecond)
	c.expectAll(1) // no proposal: timers would re-arm forever
	c.sim.RunUntil(time.Second)
	for _, r := range c.replicas {
		r.Stop()
	}
	c.sim.Run() // must drain; a leaked re-arming timer would spin forever
	if got := c.sim.Pending(); got != 0 {
		t.Errorf("%d events still pending after Stop", got)
	}
	handled := c.replicas[1].MsgsHandled
	viewBefore := c.replicas[1].View()
	c.net.Send("m0", "m1", 64, &Msg{Kind: msgViewChange, View: viewBefore + 50, Size: 64})
	c.sim.Run()
	if c.replicas[1].MsgsHandled != handled {
		t.Error("stopped replica still handling messages")
	}
	if c.replicas[1].View() != viewBefore {
		t.Error("stopped replica adopted a view change")
	}
}
