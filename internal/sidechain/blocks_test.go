package sidechain

import (
	"errors"
	"fmt"
	"testing"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

func mkTxs(n int, prefix string) []*summary.Tx {
	txs := make([]*summary.Tx, n)
	for i := range txs {
		txs[i] = &summary.Tx{
			ID: fmt.Sprintf("%s-%d", prefix, i), Kind: gasmodel.KindSwap,
			User: "alice", Amount: u256.FromUint64(uint64(i + 1)),
		}
	}
	return txs
}

func TestMetaBlockSize(t *testing.T) {
	txs := mkTxs(3, "a")
	b := NewMetaBlock(1, 1, "leader", [32]byte{}, txs)
	want := metaBlockHeaderBytes + 3*gasmodel.MainnetSwapTxBytes
	if b.SizeBytes != want {
		t.Errorf("size = %d, want %d", b.SizeBytes, want)
	}
	if b.TxRoot == [32]byte{} {
		t.Error("tx root not computed")
	}
}

func TestLedgerChaining(t *testing.T) {
	l := NewLedger([32]byte{0xaa})
	b1 := NewMetaBlock(1, 1, "leader", l.TipHash(), mkTxs(2, "a"))
	if err := l.AppendMeta(b1); err != nil {
		t.Fatal(err)
	}
	// A block not referencing the tip is rejected.
	bad := NewMetaBlock(1, 2, "leader", [32]byte{0xbb}, mkTxs(1, "b"))
	if err := l.AppendMeta(bad); !errors.Is(err, ErrNotChained) {
		t.Errorf("want ErrNotChained, got %v", err)
	}
	b2 := NewMetaBlock(1, 2, "leader", l.TipHash(), mkTxs(1, "b"))
	if err := l.AppendMeta(b2); err != nil {
		t.Fatal(err)
	}
	// Epoch going backwards is rejected.
	old := NewMetaBlock(0, 3, "leader", l.TipHash(), nil)
	if err := l.AppendMeta(old); !errors.Is(err, ErrEpochMismatch) {
		t.Errorf("want ErrEpochMismatch, got %v", err)
	}
	if l.TotalMetaBlocks() != 2 || l.TotalTxs() != 3 {
		t.Errorf("blocks=%d txs=%d", l.TotalMetaBlocks(), l.TotalTxs())
	}
}

func TestPruningReclaimsBytes(t *testing.T) {
	l := NewLedger([32]byte{})
	var epochBytes int
	for r := uint64(1); r <= 5; r++ {
		b := NewMetaBlock(1, r, "leader", l.TipHash(), mkTxs(10, fmt.Sprintf("r%d", r)))
		epochBytes += b.SizeBytes
		if err := l.AppendMeta(b); err != nil {
			t.Fatal(err)
		}
	}
	payload := &summary.SyncPayload{Epoch: 1, Payouts: []summary.PayoutEntry{{User: "alice"}}}
	sb := NewSummaryBlock(1, payload, l.MetaBlocks(1))
	l.AppendSummary(sb)

	if got := l.SizeBytes(); got != epochBytes+sb.SizeBytes {
		t.Errorf("pre-prune size = %d, want %d", got, epochBytes+sb.SizeBytes)
	}
	// Pruning before the sync confirms is refused (public verifiability).
	if err := l.Prune(1, false); !errors.Is(err, ErrSyncNotAnchored) {
		t.Errorf("want ErrSyncNotAnchored, got %v", err)
	}
	if err := l.Prune(1, true); err != nil {
		t.Fatal(err)
	}
	if got := l.SizeBytes(); got != sb.SizeBytes {
		t.Errorf("post-prune size = %d, want only the summary %d", got, sb.SizeBytes)
	}
	if l.PrunedBytes() != epochBytes {
		t.Errorf("pruned bytes = %d, want %d", l.PrunedBytes(), epochBytes)
	}
	if l.UnprunedBytes() != epochBytes+sb.SizeBytes {
		t.Errorf("unpruned baseline = %d", l.UnprunedBytes())
	}
	// Double prune is an error.
	if err := l.Prune(1, true); !errors.Is(err, ErrAlreadyPruned) {
		t.Errorf("want ErrAlreadyPruned, got %v", err)
	}
	// Summaries survive pruning.
	if len(l.Summaries()) != 1 {
		t.Error("summary pruned")
	}
}

func TestVerifyTxInclusion(t *testing.T) {
	l := NewLedger([32]byte{})
	txs := mkTxs(7, "x")
	b := NewMetaBlock(1, 1, "leader", l.TipHash(), txs)
	if err := l.AppendMeta(b); err != nil {
		t.Fatal(err)
	}
	if err := l.VerifyTxInEpoch(txs[3], 1); err != nil {
		t.Errorf("inclusion proof failed: %v", err)
	}
	ghost := &summary.Tx{ID: "ghost", Kind: gasmodel.KindSwap, User: "bob"}
	if err := l.VerifyTxInEpoch(ghost, 1); !errors.Is(err, ErrUnknownEpoch) {
		t.Errorf("ghost tx: %v", err)
	}
}

func TestPeakTracksMaximum(t *testing.T) {
	l := NewLedger([32]byte{})
	for e := uint64(1); e <= 3; e++ {
		for r := uint64(1); r <= 3; r++ {
			b := NewMetaBlock(e, r, "leader", l.TipHash(), mkTxs(5, fmt.Sprintf("e%dr%d", e, r)))
			if err := l.AppendMeta(b); err != nil {
				t.Fatal(err)
			}
		}
		payload := &summary.SyncPayload{Epoch: e}
		l.AppendSummary(NewSummaryBlock(e, payload, l.MetaBlocks(e)))
		if err := l.Prune(e, true); err != nil {
			t.Fatal(err)
		}
	}
	if l.PeakBytes() <= l.SizeBytes() {
		t.Errorf("peak %d should exceed post-prune size %d", l.PeakBytes(), l.SizeBytes())
	}
	if l.SizeBytes() != 3*l.Summaries()[0].SizeBytes {
		t.Errorf("retained = %d, want 3 empty summaries", l.SizeBytes())
	}
}

func TestSummaryBlockCommitsToMetas(t *testing.T) {
	l := NewLedger([32]byte{})
	b1 := NewMetaBlock(1, 1, "leader", l.TipHash(), mkTxs(2, "a"))
	_ = l.AppendMeta(b1)
	b2 := NewMetaBlock(1, 2, "leader", l.TipHash(), mkTxs(2, "b"))
	_ = l.AppendMeta(b2)
	sb := NewSummaryBlock(1, &summary.SyncPayload{Epoch: 1}, l.MetaBlocks(1))
	sb2 := NewSummaryBlock(1, &summary.SyncPayload{Epoch: 1}, l.MetaBlocks(1)[:1])
	if sb.MetaRoot == sb2.MetaRoot {
		t.Error("summary must commit to the exact meta-block set")
	}
	if sb.NumMeta != 2 {
		t.Errorf("NumMeta = %d", sb.NumMeta)
	}
}
