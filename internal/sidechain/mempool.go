package sidechain

import (
	"ammboost/internal/summary"
)

// Mempool is the sidechain transaction queue every miner maintains
// (Remark 2): all sidechain miners receive transactions destined for the
// sidechain, only the elected committee mines them, and when a new
// meta-block is published every miner removes the included transactions
// from its queue. Unprocessed transactions carry over to the next epoch.
//
// Removal is tombstone-based: a removed transaction just leaves byID and
// its order slot goes dead; the order slice compacts lazily once dead
// slots dominate. Remove is therefore O(1) amortized instead of
// rewriting the whole slice per rejected transaction.
type Mempool struct {
	order   []mslot
	byID    map[string]mslot
	nextSeq uint64
	dead    int
}

// mslot is one order entry. The sequence number identifies the live slot
// for an ID: a transaction removed and re-added (even the same pointer)
// gets a fresh seq, so its tombstoned older slot can never resurrect.
type mslot struct {
	tx  *summary.Tx
	seq uint64
}

// NewMempool creates an empty queue.
func NewMempool() *Mempool {
	return &Mempool{byID: make(map[string]mslot)}
}

// Add enqueues a transaction; duplicates (by ID) are ignored, as a miner
// hearing the same broadcast twice keeps one copy.
func (m *Mempool) Add(tx *summary.Tx) bool {
	if _, dup := m.byID[tx.ID]; dup {
		return false
	}
	m.nextSeq++
	s := mslot{tx: tx, seq: m.nextSeq}
	m.byID[tx.ID] = s
	m.order = append(m.order, s)
	return true
}

// Len returns the number of queued transactions.
func (m *Mempool) Len() int { return len(m.byID) }

// live reports whether an order slot still holds a queued transaction.
func (m *Mempool) live(s mslot) bool {
	cur, ok := m.byID[s.tx.ID]
	return ok && cur.seq == s.seq
}

// Peek returns up to maxBytes worth of transactions in FIFO order without
// removing them (the committee leader packs a proposal from this view).
func (m *Mempool) Peek(maxBytes int) []*summary.Tx {
	var out []*summary.Tx
	size := 0
	for _, s := range m.order {
		if !m.live(s) {
			continue
		}
		if size+s.tx.Size() > maxBytes {
			break
		}
		out = append(out, s.tx)
		size += s.tx.Size()
	}
	return out
}

// maybeCompact rewrites the order slice once tombstones dominate, keeping
// Peek linear in the live queue size.
func (m *Mempool) maybeCompact() {
	if m.dead <= 32 || m.dead <= len(m.order)/2 {
		return
	}
	m.compact()
}

func (m *Mempool) compact() {
	live := len(m.byID)
	if cap(m.order) > 64 && live < cap(m.order)/4 {
		// The live set has fallen far below the backing array's peak:
		// in-place compaction would pin that peak capacity (and the Go
		// map's peak bucket count) forever, turning one traffic spike
		// into a permanent heap hold. Rebuild both at the live size.
		fresh := make([]mslot, 0, live)
		byID := make(map[string]mslot, live)
		for _, s := range m.order {
			if m.live(s) {
				fresh = append(fresh, s)
				byID[s.tx.ID] = s
			}
		}
		m.order = fresh
		m.byID = byID
	} else {
		keep := m.order[:0]
		for _, s := range m.order {
			if m.live(s) {
				keep = append(keep, s)
			}
		}
		// Release the dropped tail for GC.
		for i := len(keep); i < len(m.order); i++ {
			m.order[i] = mslot{}
		}
		m.order = keep
	}
	m.dead = 0
}

// RemoveIncluded drops every transaction that appears in a published
// meta-block — the Remark 2 rule applied by committee members and
// bystander miners alike. It returns how many were removed.
func (m *Mempool) RemoveIncluded(b *MetaBlock) int {
	removed := 0
	for _, tx := range b.Txs {
		if _, ok := m.byID[tx.ID]; ok {
			delete(m.byID, tx.ID)
			removed++
		}
	}
	m.dead += removed
	m.maybeCompact()
	return removed
}

// Remove drops a single transaction by ID (e.g., one rejected as invalid
// during packing) in O(1) amortized time.
func (m *Mempool) Remove(id string) bool {
	if _, ok := m.byID[id]; !ok {
		return false
	}
	delete(m.byID, id)
	m.dead++
	m.maybeCompact()
	return true
}

// Contains reports whether a transaction is queued.
func (m *Mempool) Contains(id string) bool {
	_, ok := m.byID[id]
	return ok
}
