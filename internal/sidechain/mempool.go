package sidechain

import (
	"ammboost/internal/summary"
)

// Mempool is the sidechain transaction queue every miner maintains
// (Remark 2): all sidechain miners receive transactions destined for the
// sidechain, only the elected committee mines them, and when a new
// meta-block is published every miner removes the included transactions
// from its queue. Unprocessed transactions carry over to the next epoch.
type Mempool struct {
	order []*summary.Tx
	byID  map[string]*summary.Tx
}

// NewMempool creates an empty queue.
func NewMempool() *Mempool {
	return &Mempool{byID: make(map[string]*summary.Tx)}
}

// Add enqueues a transaction; duplicates (by ID) are ignored, as a miner
// hearing the same broadcast twice keeps one copy.
func (m *Mempool) Add(tx *summary.Tx) bool {
	if _, dup := m.byID[tx.ID]; dup {
		return false
	}
	m.byID[tx.ID] = tx
	m.order = append(m.order, tx)
	return true
}

// Len returns the number of queued transactions.
func (m *Mempool) Len() int { return len(m.order) }

// Peek returns up to maxBytes worth of transactions in FIFO order without
// removing them (the committee leader packs a proposal from this view).
func (m *Mempool) Peek(maxBytes int) []*summary.Tx {
	var out []*summary.Tx
	size := 0
	for _, tx := range m.order {
		if size+tx.Size() > maxBytes {
			break
		}
		out = append(out, tx)
		size += tx.Size()
	}
	return out
}

// RemoveIncluded drops every transaction that appears in a published
// meta-block — the Remark 2 rule applied by committee members and
// bystander miners alike. It returns how many were removed.
func (m *Mempool) RemoveIncluded(b *MetaBlock) int {
	removed := 0
	for _, tx := range b.Txs {
		if _, ok := m.byID[tx.ID]; ok {
			delete(m.byID, tx.ID)
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	keep := m.order[:0]
	for _, tx := range m.order {
		if _, ok := m.byID[tx.ID]; ok {
			keep = append(keep, tx)
		}
	}
	m.order = keep
	return removed
}

// Remove drops a single transaction by ID (e.g., one rejected as invalid
// during packing).
func (m *Mempool) Remove(id string) bool {
	if _, ok := m.byID[id]; !ok {
		return false
	}
	delete(m.byID, id)
	keep := m.order[:0]
	for _, tx := range m.order {
		if tx.ID != id {
			keep = append(keep, tx)
		}
	}
	m.order = keep
	return true
}

// Contains reports whether a transaction is queued.
func (m *Mempool) Contains(id string) bool {
	_, ok := m.byID[id]
	return ok
}
