package amm

import (
	"math/rand"
	"testing"

	"ammboost/internal/u256"
)

func TestSqrtRatioAtTickZero(t *testing.T) {
	// 1.0001^0 = 1, so the ratio is exactly 2^96.
	if got := SqrtRatioAtTick(0); !got.Eq(u256.Q96) {
		t.Errorf("SqrtRatioAtTick(0) = %s, want 2^96", got)
	}
}

func TestSqrtRatioKnownValues(t *testing.T) {
	// Uniswap V3's published extremes. Our 300-bit computation should land
	// within 1 part in 10^10 of the magic-constant chain (which itself
	// carries ~2^-60 relative error).
	cases := []struct {
		tick int32
		want u256.Int
	}{
		{MinTick, u256.MustFromDecimal("4295128739")},
		{MaxTick, u256.MustFromDecimal("1461446703485210103287273052203988822378723970342")},
	}
	for _, c := range cases {
		got := SqrtRatioAtTick(c.tick)
		// |got - want| / want < 1e-10
		diff := u256.Sub(u256.MaxOf(got, c.want), u256.Min(got, c.want))
		bound := u256.Div(c.want, u256.FromUint64(10_000_000_000))
		if diff.Gt(u256.MaxOf(bound, u256.One)) {
			t.Errorf("SqrtRatioAtTick(%d) = %s, want ~%s (diff %s)", c.tick, got, c.want, diff)
		}
	}
}

func TestSqrtRatioMonotonic(t *testing.T) {
	prev := SqrtRatioAtTick(MinTick)
	// Stride through the range; exhaustive would be slow.
	for tick := MinTick + 1009; tick <= MaxTick; tick += 1009 {
		cur := SqrtRatioAtTick(tick)
		if !cur.Gt(prev) {
			t.Fatalf("SqrtRatioAtTick not strictly increasing at %d", tick)
		}
		prev = cur
	}
}

func TestSqrtRatioReciprocal(t *testing.T) {
	// sqrt(1.0001^t) * sqrt(1.0001^-t) = 1, so ratio(t)*ratio(-t) ≈ 2^192.
	two192 := u256.Shl(u256.One, 192)
	for _, tick := range []int32{1, 100, 5000, 100000, 800000} {
		a := SqrtRatioAtTick(tick)
		b := SqrtRatioAtTick(-tick)
		prod, _ := u256.MulDiv(a, b, u256.One)
		diff := u256.Sub(u256.MaxOf(prod, two192), u256.Min(prod, two192))
		// Error bound: one ulp of each operand → |diff| <= a + b.
		if diff.Gt(u256.Add(a, b)) {
			t.Errorf("ratio(%d)*ratio(-%d) = %s, too far from 2^192", tick, tick, prod)
		}
	}
}

func TestTickAtSqrtRatioRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		tick := int32(r.Intn(int(MaxTick-MinTick))) + MinTick
		ratio := SqrtRatioAtTick(tick)
		if got := TickAtSqrtRatio(ratio); got != tick {
			t.Fatalf("TickAtSqrtRatio(SqrtRatioAtTick(%d)) = %d", tick, got)
		}
		// One below the ratio must resolve to the previous tick.
		if tick > MinTick {
			if got := TickAtSqrtRatio(u256.Sub(ratio, u256.One)); got != tick-1 {
				t.Fatalf("TickAtSqrtRatio(ratio(%d)-1) = %d, want %d", tick, got, tick-1)
			}
		}
	}
}

func TestTickAtSqrtRatioBounds(t *testing.T) {
	if got := TickAtSqrtRatio(MinSqrtRatio); got != MinTick {
		t.Errorf("TickAtSqrtRatio(min) = %d", got)
	}
	if got := TickAtSqrtRatio(u256.Sub(MaxSqrtRatio, u256.One)); got != MaxTick-1 {
		t.Errorf("TickAtSqrtRatio(max-1) = %d, want %d", got, MaxTick-1)
	}
	assertPanics(t, func() { TickAtSqrtRatio(MaxSqrtRatio) })
	assertPanics(t, func() { TickAtSqrtRatio(u256.Sub(MinSqrtRatio, u256.One)) })
	assertPanics(t, func() { SqrtRatioAtTick(MaxTick + 1) })
	assertPanics(t, func() { SqrtRatioAtTick(MinTick - 1) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func BenchmarkSqrtRatioAtTickCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = computeSqrtRatio(int32(i%1000) * 60)
	}
}

func BenchmarkSqrtRatioAtTickCached(b *testing.B) {
	SqrtRatioAtTick(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SqrtRatioAtTick(60)
	}
}
