package amm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ammboost/internal/binenc"
)

// ErrBadPoolEncoding rejects a pool snapshot that does not decode cleanly.
var ErrBadPoolEncoding = errors.New("amm: malformed pool encoding")

// poolCodecVersion guards the binary layout below; bump on any change.
const poolCodecVersion = 1

// AppendPool appends the deterministic binary encoding of the pool's full
// state to buf and returns the extended slice. Ticks and positions are
// written in their canonical sorted order, so two pools with identical
// state always encode to identical bytes — the property the durable store
// relies on when it pins recovered state roots against uninterrupted
// runs. Dirty-tracking is not encoded: a snapshot is taken at an epoch
// boundary, where the canonical pool is clean by construction.
func AppendPool(buf []byte, p *Pool) []byte {
	buf = append(buf, poolCodecVersion)
	buf = binenc.AppendString(buf, p.Token0)
	buf = binenc.AppendString(buf, p.Token1)
	buf = binary.BigEndian.AppendUint32(buf, p.FeePips)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.TickSpacing))
	buf = binenc.AppendU256(buf, p.SqrtPriceX96)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Tick))
	buf = binenc.AppendU256(buf, p.Liquidity)
	buf = binenc.AppendU256(buf, p.FeeGrowthGlobal0X128)
	buf = binenc.AppendU256(buf, p.FeeGrowthGlobal1X128)
	buf = binenc.AppendU256(buf, p.Reserve0)
	buf = binenc.AppendU256(buf, p.Reserve1)

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.tickList)))
	for _, tick := range p.tickList {
		ti := p.ticks[tick]
		buf = binary.BigEndian.AppendUint32(buf, uint32(tick))
		buf = binenc.AppendU256(buf, ti.LiquidityGross)
		buf = binenc.AppendU256(buf, ti.LiquidityNetAdd)
		buf = binenc.AppendU256(buf, ti.LiquidityNetSub)
		buf = binenc.AppendU256(buf, ti.FeeGrowthOutside0X128)
		buf = binenc.AppendU256(buf, ti.FeeGrowthOutside1X128)
	}

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.posList)))
	for _, id := range p.posList {
		pos := p.positions[id]
		buf = binenc.AppendString(buf, pos.ID)
		buf = binenc.AppendString(buf, pos.Owner)
		buf = binary.BigEndian.AppendUint32(buf, uint32(pos.TickLower))
		buf = binary.BigEndian.AppendUint32(buf, uint32(pos.TickUpper))
		buf = binenc.AppendU256(buf, pos.Liquidity)
		buf = binenc.AppendU256(buf, pos.FeeGrowthInside0LastX128)
		buf = binenc.AppendU256(buf, pos.FeeGrowthInside1LastX128)
		buf = binenc.AppendU256(buf, pos.TokensOwed0)
		buf = binenc.AppendU256(buf, pos.TokensOwed1)
	}
	return buf
}

// DecodePool decodes a pool snapshot produced by AppendPool, returning
// the pool, the number of bytes consumed, and any framing error. The
// decoded pool is clean (no dirty tracking) and fully indexed: sorted
// tick and position lists are rebuilt from the canonical encoding order.
func DecodePool(buf []byte) (*Pool, int, error) {
	d := binenc.NewCursor(buf)
	if v := d.U8(); d.Err() == nil && v != poolCodecVersion {
		return nil, 0, fmt.Errorf("%w: codec version %d, want %d", ErrBadPoolEncoding, v, poolCodecVersion)
	}
	p := &Pool{
		ticks:     make(map[int32]*TickInfo),
		positions: make(map[string]*Position),
	}
	p.Token0 = d.Str()
	p.Token1 = d.Str()
	p.FeePips = d.U32()
	p.TickSpacing = int32(d.U32())
	p.SqrtPriceX96 = d.U256()
	p.Tick = int32(d.U32())
	p.Liquidity = d.U256()
	p.FeeGrowthGlobal0X128 = d.U256()
	p.FeeGrowthGlobal1X128 = d.U256()
	p.Reserve0 = d.U256()
	p.Reserve1 = d.U256()

	nTicks := int(d.U32())
	if nTicks > d.Remaining()/25 {
		d.Fail("tick count %d exceeds buffer", nTicks)
	}
	if d.Err() != nil {
		nTicks = 0
	}
	p.tickList = make([]int32, 0, nTicks)
	for i := 0; i < nTicks && d.Err() == nil; i++ {
		tick := int32(d.U32())
		ti := &TickInfo{
			LiquidityGross:        d.U256(),
			LiquidityNetAdd:       d.U256(),
			LiquidityNetSub:       d.U256(),
			FeeGrowthOutside0X128: d.U256(),
			FeeGrowthOutside1X128: d.U256(),
		}
		if len(p.tickList) > 0 && tick <= p.tickList[len(p.tickList)-1] {
			d.Fail("ticks out of order")
			break
		}
		p.ticks[tick] = ti
		p.tickList = append(p.tickList, tick)
	}

	nPos := int(d.U32())
	if nPos > d.Remaining()/25 {
		d.Fail("position count %d exceeds buffer", nPos)
	}
	if d.Err() != nil {
		nPos = 0
	}
	p.posList = make([]string, 0, nPos)
	for i := 0; i < nPos && d.Err() == nil; i++ {
		pos := &Position{}
		pos.ID = d.Str()
		pos.Owner = d.Str()
		pos.TickLower = int32(d.U32())
		pos.TickUpper = int32(d.U32())
		pos.Liquidity = d.U256()
		pos.FeeGrowthInside0LastX128 = d.U256()
		pos.FeeGrowthInside1LastX128 = d.U256()
		pos.TokensOwed0 = d.U256()
		pos.TokensOwed1 = d.U256()
		if len(p.posList) > 0 && pos.ID <= p.posList[len(p.posList)-1] {
			d.Fail("positions out of order")
			break
		}
		p.positions[pos.ID] = pos
		p.posList = append(p.posList, pos.ID)
	}
	if err := d.Err(); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadPoolEncoding, err)
	}
	return p, d.Offset(), nil
}
