package amm

import "ammboost/internal/u256"

// feeDenominator expresses fees in hundredths of a bip (pips): a fee of
// 3000 is 0.30%.
const feeDenominator = 1_000_000

// SwapStep is the outcome of swapping within a single tick range.
type SwapStep struct {
	SqrtPriceNextX96 u256.Int // price after this step
	AmountIn         u256.Int // input consumed, excluding fee
	AmountOut        u256.Int // output produced
	FeeAmount        u256.Int // fee charged on the input token
}

// ComputeSwapStep advances the swap within one tick range: from sqrtCurrent
// toward sqrtTarget with the given liquidity, consuming at most
// amountRemaining (of input when exactIn, of output otherwise) and charging
// feePips on the input.
//
// This mirrors Uniswap V3's SwapMath.computeSwapStep, including its rounding
// directions (always in the pool's favor).
func ComputeSwapStep(sqrtCurrent, sqrtTarget, liquidity, amountRemaining u256.Int, feePips uint32, exactIn bool) (SwapStep, error) {
	var step SwapStep
	zeroForOne := !sqrtCurrent.Lt(sqrtTarget)
	feeDen := u256.FromUint64(feeDenominator)
	feeFactor := u256.FromUint64(feeDenominator - uint64(feePips))

	var err error
	if exactIn {
		amountRemainingLessFee, overflow := u256.MulDiv(amountRemaining, feeFactor, feeDen)
		if overflow {
			return step, ErrPriceOverflow
		}
		// Input needed to reach the target price.
		if zeroForOne {
			step.AmountIn, err = Amount0Delta(sqrtTarget, sqrtCurrent, liquidity, true)
		} else {
			step.AmountIn, err = Amount1Delta(sqrtCurrent, sqrtTarget, liquidity, true)
		}
		if err != nil {
			return step, err
		}
		if !amountRemainingLessFee.Lt(step.AmountIn) {
			step.SqrtPriceNextX96 = sqrtTarget
		} else {
			step.SqrtPriceNextX96, err = NextSqrtPriceFromInput(sqrtCurrent, liquidity, amountRemainingLessFee, zeroForOne)
			if err != nil {
				return step, err
			}
		}
	} else {
		// Output available down to the target price.
		if zeroForOne {
			step.AmountOut, err = Amount1Delta(sqrtTarget, sqrtCurrent, liquidity, false)
		} else {
			step.AmountOut, err = Amount0Delta(sqrtCurrent, sqrtTarget, liquidity, false)
		}
		if err != nil {
			return step, err
		}
		if !amountRemaining.Lt(step.AmountOut) {
			step.SqrtPriceNextX96 = sqrtTarget
		} else {
			step.SqrtPriceNextX96, err = NextSqrtPriceFromOutput(sqrtCurrent, liquidity, amountRemaining, zeroForOne)
			if err != nil {
				return step, err
			}
		}
	}

	max := step.SqrtPriceNextX96.Eq(sqrtTarget)

	// Settle in/out for the actually-traversed price interval.
	if zeroForOne {
		if !(max && exactIn) {
			step.AmountIn, err = Amount0Delta(step.SqrtPriceNextX96, sqrtCurrent, liquidity, true)
			if err != nil {
				return step, err
			}
		}
		if !(max && !exactIn) {
			step.AmountOut, err = Amount1Delta(step.SqrtPriceNextX96, sqrtCurrent, liquidity, false)
			if err != nil {
				return step, err
			}
		}
	} else {
		if !(max && exactIn) {
			step.AmountIn, err = Amount1Delta(sqrtCurrent, step.SqrtPriceNextX96, liquidity, true)
			if err != nil {
				return step, err
			}
		}
		if !(max && !exactIn) {
			step.AmountOut, err = Amount0Delta(sqrtCurrent, step.SqrtPriceNextX96, liquidity, false)
			if err != nil {
				return step, err
			}
		}
	}

	// Exact output cannot deliver more than requested.
	if !exactIn && step.AmountOut.Gt(amountRemaining) {
		step.AmountOut = amountRemaining
	}

	if exactIn && !step.SqrtPriceNextX96.Eq(sqrtTarget) {
		// Didn't reach the target: the entire remainder is consumed, the
		// excess over amountIn is the fee.
		step.FeeAmount = u256.Sub(amountRemaining, step.AmountIn)
	} else {
		fee, overflow := u256.MulDivRoundingUp(step.AmountIn, u256.FromUint64(uint64(feePips)), feeFactor)
		if overflow {
			return step, ErrPriceOverflow
		}
		step.FeeAmount = fee
	}
	return step, nil
}
