package amm

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ammboost/internal/u256"
)

// buildCodecPool evolves a pool through a random mix of mints, swaps,
// burns, and collects so its encoding covers multi-tick, multi-position
// state with accrued fees.
func buildCodecPool(t *testing.T, seed int64) *Pool {
	t.Helper()
	p, err := NewPool("A", "B", 3000, 60, u256.Q96)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Mint("genesis", "lp", -887220, 887220, u256.MustFromDecimal("10000000000000")); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 60; i++ {
		switch rng.Intn(4) {
		case 0:
			lo := int32(rng.Intn(40)-20) * 60
			hi := lo + int32(rng.Intn(10)+1)*60
			id := "pos-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			_, _ = p.Mint(id, "lp", lo, hi, u256.FromUint64(uint64(rng.Intn(1_000_000)+1000)))
		case 1, 2:
			_, _ = p.Swap(rng.Intn(2) == 0, true, u256.FromUint64(uint64(rng.Intn(100_000)+1)), u256.Zero)
		case 3:
			for _, pos := range p.Positions() {
				if pos.ID != "genesis" {
					_, _ = p.Burn(pos.ID, "lp", u256.Div(pos.Liquidity, u256.Two))
					break
				}
			}
		}
	}
	p.TakeDirty() // epoch boundary: snapshots are taken clean
	return p
}

// TestPoolCodecRoundTrip pins the identity AppendPool → DecodePool: the
// decoded pool must be structurally identical (reflect.DeepEqual over
// every field, exported or not) and re-encode to the same bytes.
func TestPoolCodecRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		p := buildCodecPool(t, seed)
		enc := AppendPool(nil, p)
		got, used, err := DecodePool(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if used != len(enc) {
			t.Fatalf("seed %d: decoded %d of %d bytes", seed, used, len(enc))
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("seed %d: decoded pool differs from original", seed)
		}
		if again := AppendPool(nil, got); string(again) != string(enc) {
			t.Fatalf("seed %d: re-encoding differs", seed)
		}
	}
}

// TestPoolCodecBehavioralEquivalence drives the original and the decoded
// copy through the same trades: every result and the final states must
// match bit for bit — the property recovery relies on when it resumes
// execution on restored pools.
func TestPoolCodecBehavioralEquivalence(t *testing.T) {
	p := buildCodecPool(t, 7)
	enc := AppendPool(nil, p)
	q, _, err := DecodePool(enc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		amt := u256.FromUint64(uint64(rng.Intn(50_000) + 1))
		zf := rng.Intn(2) == 0
		rp, errP := p.Swap(zf, true, amt, u256.Zero)
		rq, errQ := q.Swap(zf, true, amt, u256.Zero)
		if (errP == nil) != (errQ == nil) || !reflect.DeepEqual(rp, rq) {
			t.Fatalf("swap %d diverged: %+v/%v vs %+v/%v", i, rp, errP, rq, errQ)
		}
	}
	p.TakeDirty()
	q.TakeDirty()
	if !reflect.DeepEqual(p, q) {
		t.Fatal("states diverged after identical trades")
	}
}

// TestPoolCodecTruncation: every truncation of a valid encoding fails
// cleanly instead of panicking or decoding garbage.
func TestPoolCodecTruncation(t *testing.T) {
	p := buildCodecPool(t, 3)
	enc := AppendPool(nil, p)
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := DecodePool(enc[:cut]); !errors.Is(err, ErrBadPoolEncoding) {
			t.Fatalf("cut=%d: err = %v, want ErrBadPoolEncoding", cut, err)
		}
	}
}
