package amm

import (
	"errors"
	"fmt"
	"sort"

	"ammboost/internal/u256"
)

// Pool-level errors.
var (
	ErrPriceLimit         = errors.New("amm: price limit out of bounds")
	ErrZeroAmount         = errors.New("amm: zero amount")
	ErrPositionNotFound   = errors.New("amm: position not found")
	ErrNotPositionOwner   = errors.New("amm: caller does not own position")
	ErrInsufficientLiq    = errors.New("amm: position has insufficient liquidity")
	ErrTickNotSpaced      = errors.New("amm: tick not aligned to spacing")
	ErrFlashNotRepaid     = errors.New("amm: flash loan not repaid with fee")
	ErrPositionHasBalance = errors.New("amm: position still has liquidity or owed tokens")
	ErrSlippage           = errors.New("amm: slippage bounds violated")
	ErrDeadline           = errors.New("amm: transaction deadline exceeded")
)

// TickInfo tracks liquidity referencing a tick and the fee growth observed
// "outside" it, per Uniswap V3's accounting.
type TickInfo struct {
	// LiquidityGross is total liquidity of positions using this tick as a
	// lower or upper bound; the tick is deinitialized when it reaches zero.
	LiquidityGross u256.Int
	// LiquidityNetAdd/Sub decompose the signed net liquidity change when
	// the tick is crossed left-to-right: net = Add - Sub.
	LiquidityNetAdd u256.Int
	LiquidityNetSub u256.Int
	// Fee growth on the other side of this tick relative to the current
	// tick (wrapping Q128 accumulators).
	FeeGrowthOutside0X128 u256.Int
	FeeGrowthOutside1X128 u256.Int
}

// Position is a concentrated-liquidity position identified by an opaque ID
// (ammBoost derives IDs from the mint transaction hash and the owner key).
type Position struct {
	ID        string
	Owner     string
	TickLower int32
	TickUpper int32
	Liquidity u256.Int
	// Fee growth inside the range as of the last position touch.
	FeeGrowthInside0LastX128 u256.Int
	FeeGrowthInside1LastX128 u256.Int
	// Uncollected amounts owed to the owner (fees + burned principal).
	TokensOwed0 u256.Int
	TokensOwed1 u256.Int
}

// Clone returns a deep copy of the position.
func (p *Position) Clone() *Position {
	c := *p
	return &c
}

// Pool is a two-token concentrated-liquidity pool. It is not safe for
// concurrent use; callers (contract runtime, sidechain executor) serialize
// access, matching per-pool sequential execution on a blockchain.
type Pool struct {
	Token0 string
	Token1 string
	// FeePips is the swap fee in hundredths of a bip (3000 = 0.30%).
	FeePips     uint32
	TickSpacing int32

	SqrtPriceX96 u256.Int
	Tick         int32
	Liquidity    u256.Int // liquidity in range at the current price

	FeeGrowthGlobal0X128 u256.Int
	FeeGrowthGlobal1X128 u256.Int

	ticks     map[int32]*TickInfo
	tickList  []int32 // sorted initialized ticks
	positions map[string]*Position
	posList   []string // sorted position IDs (incrementally maintained)

	// Reserves actually held by the pool (principal + accrued fees).
	Reserve0 u256.Int
	Reserve1 u256.Int

	// Dirty tracking for incremental state commitments. Every mutation
	// records what it touched: the header flag covers pool-level fields
	// (price, tick, liquidity, fee growth, reserves), the tick/position
	// sets cover per-entry accounting, and the structural flag records
	// changes to set membership (tick flips, position create/delete),
	// which shift commitment leaf indices and force a chunk-layout
	// rebuild instead of a path update.
	dirtyHeader    bool
	structDirty    bool
	dirtyTicks     map[int32]struct{}
	dirtyPositions map[string]struct{}
}

// NewPool creates a pool for (token0, token1) at the given initial sqrt
// price.
func NewPool(token0, token1 string, feePips uint32, tickSpacing int32, sqrtPriceX96 u256.Int) (*Pool, error) {
	if sqrtPriceX96.Lt(MinSqrtRatio) || !sqrtPriceX96.Lt(MaxSqrtRatio) {
		return nil, ErrPriceLimit
	}
	if tickSpacing <= 0 {
		return nil, fmt.Errorf("amm: tick spacing must be positive, got %d", tickSpacing)
	}
	return &Pool{
		Token0:       token0,
		Token1:       token1,
		FeePips:      feePips,
		TickSpacing:  tickSpacing,
		SqrtPriceX96: sqrtPriceX96,
		Tick:         TickAtSqrtRatio(sqrtPriceX96),
		ticks:        make(map[int32]*TickInfo),
		positions:    make(map[string]*Position),
	}, nil
}

// Clone deep-copies the pool. The sidechain snapshots pool state at epoch
// start and evolves the copy while the mainchain state stays frozen.
func (p *Pool) Clone() *Pool {
	c := *p
	c.ticks = make(map[int32]*TickInfo, len(p.ticks))
	for t, ti := range p.ticks {
		tc := *ti
		c.ticks[t] = &tc
	}
	c.tickList = append([]int32(nil), p.tickList...)
	c.positions = make(map[string]*Position, len(p.positions))
	for id, pos := range p.positions {
		c.positions[id] = pos.Clone()
	}
	c.posList = append([]string(nil), p.posList...)
	// Dirty state is preserved: a clone of a half-dirty pool must commit
	// the same pending changes (the executor's swap-rollback snapshot
	// relies on restoring the dirty sets along with the state).
	c.dirtyTicks = nil
	c.dirtyPositions = nil
	if len(p.dirtyTicks) > 0 {
		c.dirtyTicks = make(map[int32]struct{}, len(p.dirtyTicks))
		for t := range p.dirtyTicks {
			c.dirtyTicks[t] = struct{}{}
		}
	}
	if len(p.dirtyPositions) > 0 {
		c.dirtyPositions = make(map[string]struct{}, len(p.dirtyPositions))
		for id := range p.dirtyPositions {
			c.dirtyPositions[id] = struct{}{}
		}
	}
	return &c
}

// --- dirty tracking ---

func (p *Pool) markHeaderDirty() { p.dirtyHeader = true }

func (p *Pool) markTickDirty(tick int32) {
	if p.dirtyTicks == nil {
		p.dirtyTicks = make(map[int32]struct{}, 8)
	}
	p.dirtyTicks[tick] = struct{}{}
}

func (p *Pool) markPositionDirty(id string) {
	if p.dirtyPositions == nil {
		p.dirtyPositions = make(map[string]struct{}, 8)
	}
	p.dirtyPositions[id] = struct{}{}
}

// Dirty reports whether any state changed since the last ClearDirty.
func (p *Pool) Dirty() bool {
	return p.dirtyHeader || p.structDirty || len(p.dirtyTicks) > 0 || len(p.dirtyPositions) > 0
}

// HeaderDirty reports whether pool-level fields changed.
func (p *Pool) HeaderDirty() bool { return p.dirtyHeader }

// StructurallyDirty reports whether tick or position set membership
// changed (leaf insertion/removal, not just value updates).
func (p *Pool) StructurallyDirty() bool { return p.structDirty }

// DirtyTicks returns the set of ticks touched since the last ClearDirty.
// The returned map is the pool's internal set; callers must not mutate it
// and must not retain it across mutations.
func (p *Pool) DirtyTicks() map[int32]struct{} { return p.dirtyTicks }

// DirtyPositions returns the set of position IDs touched since the last
// ClearDirty, under the same internal-view contract as DirtyTicks.
func (p *Pool) DirtyPositions() map[string]struct{} { return p.dirtyPositions }

// ClearDirty resets all dirty tracking; the caller asserts its cached
// commitment now reflects the pool's current state.
func (p *Pool) ClearDirty() {
	p.dirtyHeader = false
	p.structDirty = false
	clear(p.dirtyTicks)
	clear(p.dirtyPositions)
}

// DirtyState is a pool's dirty tracking detached from the pool itself, so
// a commitment can be computed on another goroutine while the pool's own
// tracking starts accumulating the next epoch's changes. The maps are
// owned by the holder; the pool they came from no longer references them.
type DirtyState struct {
	Header     bool
	Structural bool
	Ticks      map[int32]struct{}
	Positions  map[string]struct{}
}

// Dirty reports whether the snapshot records any change.
func (d *DirtyState) Dirty() bool {
	return d.Header || d.Structural || len(d.Ticks) > 0 || len(d.Positions) > 0
}

// TakeDirty detaches the pool's current dirty tracking and resets it, the
// hand-off point of the pipelined epoch lifecycle: the sealed epoch's
// commitment job keeps the snapshot while the pool (now the canonical
// epoch-start state) tracks the next epoch's changes from a clean slate.
// Unlike ClearDirty, the dirty sets are moved, not cleared, so the caller
// may read them concurrently with later Clone calls on the pool.
func (p *Pool) TakeDirty() DirtyState {
	d := DirtyState{
		Header:     p.dirtyHeader,
		Structural: p.structDirty,
		Ticks:      p.dirtyTicks,
		Positions:  p.dirtyPositions,
	}
	p.dirtyHeader = false
	p.structDirty = false
	p.dirtyTicks = nil
	p.dirtyPositions = nil
	return d
}

// Position returns the position with the given ID, or nil.
func (p *Pool) Position(id string) *Position {
	return p.positions[id]
}

// Positions returns all positions in unspecified order.
func (p *Pool) Positions() []*Position {
	out := make([]*Position, 0, len(p.positions))
	for _, pos := range p.positions {
		out = append(out, pos)
	}
	return out
}

// NumPositions returns the number of live positions.
func (p *Pool) NumPositions() int { return len(p.positions) }

// TickInfoAt returns tick state for an initialized tick, or nil.
func (p *Pool) TickInfoAt(tick int32) *TickInfo { return p.ticks[tick] }

// Ticks returns the initialized ticks in ascending order (the engine's
// state-root encoding walks them deterministically).
func (p *Pool) Ticks() []int32 {
	return append([]int32(nil), p.tickList...)
}

// TickKeys returns the pool's internal sorted tick list without copying.
// The slice must not be modified and is valid only until the next
// mutation; commitment hot paths use it to avoid per-call allocation.
func (p *Pool) TickKeys() []int32 { return p.tickList }

// NumTicks returns the number of initialized ticks.
func (p *Pool) NumTicks() int { return len(p.tickList) }

// PositionKeys returns the pool's internal sorted position-ID list,
// maintained incrementally on create/delete so commitment paths never
// re-sort. Same read-only contract as TickKeys.
func (p *Pool) PositionKeys() []string { return p.posList }

// insertPosition registers a position ID in the sorted index.
func (p *Pool) insertPosition(id string) {
	i := sort.SearchStrings(p.posList, id)
	if i < len(p.posList) && p.posList[i] == id {
		return
	}
	p.posList = append(p.posList, "")
	copy(p.posList[i+1:], p.posList[i:])
	p.posList[i] = id
}

func (p *Pool) removePosition(id string) {
	i := sort.SearchStrings(p.posList, id)
	if i < len(p.posList) && p.posList[i] == id {
		p.posList = append(p.posList[:i], p.posList[i+1:]...)
	}
}

func (p *Pool) checkTicks(lower, upper int32) error {
	if lower >= upper || lower < MinTick || upper > MaxTick {
		return ErrInvalidTickRange
	}
	if lower%p.TickSpacing != 0 || upper%p.TickSpacing != 0 {
		return ErrTickNotSpaced
	}
	return nil
}

// insertTick registers tick as initialized in the sorted list.
func (p *Pool) insertTick(tick int32) {
	i := sort.Search(len(p.tickList), func(i int) bool { return p.tickList[i] >= tick })
	if i < len(p.tickList) && p.tickList[i] == tick {
		return
	}
	p.tickList = append(p.tickList, 0)
	copy(p.tickList[i+1:], p.tickList[i:])
	p.tickList[i] = tick
}

func (p *Pool) removeTick(tick int32) {
	i := sort.Search(len(p.tickList), func(i int) bool { return p.tickList[i] >= tick })
	if i < len(p.tickList) && p.tickList[i] == tick {
		p.tickList = append(p.tickList[:i], p.tickList[i+1:]...)
	}
}

// nextInitializedTick finds the next initialized tick strictly below (when
// lte) or strictly above the given tick. The boolean reports whether one was
// found; otherwise the returned tick is the search bound (MinTick/MaxTick).
func (p *Pool) nextInitializedTick(tick int32, lte bool) (int32, bool) {
	if lte {
		// Largest initialized tick <= tick.
		i := sort.Search(len(p.tickList), func(i int) bool { return p.tickList[i] > tick })
		if i > 0 {
			return p.tickList[i-1], true
		}
		return MinTick, false
	}
	// Smallest initialized tick > tick.
	i := sort.Search(len(p.tickList), func(i int) bool { return p.tickList[i] > tick })
	if i < len(p.tickList) {
		return p.tickList[i], true
	}
	return MaxTick, false
}

// updateTick applies a liquidity delta at a tick boundary. upper indicates
// the tick is the position's upper bound. It reports whether the tick
// flipped between initialized and uninitialized.
func (p *Pool) updateTick(tick int32, liquidityDelta u256.Int, addLiquidity, upper bool) (flipped bool, err error) {
	info := p.ticks[tick]
	wasInit := info != nil && !info.LiquidityGross.IsZero()
	if info == nil {
		info = &TickInfo{}
		p.ticks[tick] = info
	}
	if addLiquidity {
		info.LiquidityGross = u256.Add(info.LiquidityGross, liquidityDelta)
	} else {
		var under bool
		info.LiquidityGross, under = u256.SubUnderflow(info.LiquidityGross, liquidityDelta)
		if under {
			return false, ErrInsufficientLiq
		}
	}
	if !wasInit && addLiquidity {
		// Convention: assume all prior fee growth happened below the tick.
		if tick <= p.Tick {
			info.FeeGrowthOutside0X128 = p.FeeGrowthGlobal0X128
			info.FeeGrowthOutside1X128 = p.FeeGrowthGlobal1X128
		}
	}
	// Net change when crossing left-to-right: +L at lower, -L at upper.
	switch {
	case addLiquidity && !upper:
		info.LiquidityNetAdd = u256.Add(info.LiquidityNetAdd, liquidityDelta)
	case addLiquidity && upper:
		info.LiquidityNetSub = u256.Add(info.LiquidityNetSub, liquidityDelta)
	case !addLiquidity && !upper:
		info.LiquidityNetAdd = u256.Sub(info.LiquidityNetAdd, liquidityDelta)
	default:
		info.LiquidityNetSub = u256.Sub(info.LiquidityNetSub, liquidityDelta)
	}
	isInit := !info.LiquidityGross.IsZero()
	if isInit != wasInit {
		flipped = true
		p.structDirty = true
		if isInit {
			p.insertTick(tick)
		} else {
			delete(p.ticks, tick)
			p.removeTick(tick)
		}
	}
	p.markTickDirty(tick)
	return flipped, nil
}

// feeGrowthInside computes fee growth inside [lower, upper] using the
// wrapping Q128 convention.
func (p *Pool) feeGrowthInside(lower, upper int32) (fg0, fg1 u256.Int) {
	lowerInfo := p.ticks[lower]
	upperInfo := p.ticks[upper]
	var below0, below1, above0, above1 u256.Int
	if lowerInfo != nil {
		if p.Tick >= lower {
			below0, below1 = lowerInfo.FeeGrowthOutside0X128, lowerInfo.FeeGrowthOutside1X128
		} else {
			below0 = u256.Sub(p.FeeGrowthGlobal0X128, lowerInfo.FeeGrowthOutside0X128)
			below1 = u256.Sub(p.FeeGrowthGlobal1X128, lowerInfo.FeeGrowthOutside1X128)
		}
	}
	if upperInfo != nil {
		if p.Tick < upper {
			above0, above1 = upperInfo.FeeGrowthOutside0X128, upperInfo.FeeGrowthOutside1X128
		} else {
			above0 = u256.Sub(p.FeeGrowthGlobal0X128, upperInfo.FeeGrowthOutside0X128)
			above1 = u256.Sub(p.FeeGrowthGlobal1X128, upperInfo.FeeGrowthOutside1X128)
		}
	}
	fg0 = u256.Sub(u256.Sub(p.FeeGrowthGlobal0X128, below0), above0)
	fg1 = u256.Sub(u256.Sub(p.FeeGrowthGlobal1X128, below1), above1)
	return fg0, fg1
}

// FeeGrowthInside returns the wrapping Q128 fee growth accumulated inside
// [lower, upper]; callers snapshot it to detect positions whose fees moved.
func (p *Pool) FeeGrowthInside(lower, upper int32) (fg0, fg1 u256.Int) {
	return p.feeGrowthInside(lower, upper)
}

// updatePositionFees accrues pending fees into TokensOwed based on fee
// growth inside the range since the last touch.
func (p *Pool) updatePositionFees(pos *Position) {
	fg0, fg1 := p.feeGrowthInside(pos.TickLower, pos.TickUpper)
	if !pos.Liquidity.IsZero() {
		delta0 := u256.Sub(fg0, pos.FeeGrowthInside0LastX128)
		delta1 := u256.Sub(fg1, pos.FeeGrowthInside1LastX128)
		owed0, _ := u256.MulDiv(delta0, pos.Liquidity, u256.Q128)
		owed1, _ := u256.MulDiv(delta1, pos.Liquidity, u256.Q128)
		pos.TokensOwed0 = u256.Add(pos.TokensOwed0, owed0)
		pos.TokensOwed1 = u256.Add(pos.TokensOwed1, owed1)
	}
	pos.FeeGrowthInside0LastX128 = fg0
	pos.FeeGrowthInside1LastX128 = fg1
	p.markPositionDirty(pos.ID)
}

// MintResult reports the token amounts a mint pulled into the pool.
type MintResult struct {
	PositionID string
	Liquidity  u256.Int
	Amount0    u256.Int
	Amount1    u256.Int
}

// Mint adds liquidity to position posID owned by owner over
// [tickLower, tickUpper]. If the position exists, liquidity is added to it
// (owner and range must match); otherwise it is created. Returns the token
// amounts the pool takes in (rounded up, as on-chain).
func (p *Pool) Mint(posID, owner string, tickLower, tickUpper int32, liquidity u256.Int) (MintResult, error) {
	var res MintResult
	if err := p.checkTicks(tickLower, tickUpper); err != nil {
		return res, err
	}
	if liquidity.IsZero() {
		return res, ErrLiquidityZero
	}
	// Compute the funding amounts before touching any state: an amount
	// overflow must reject the mint with the pool untouched, or the
	// half-applied position would leak into the epoch's state root.
	sqrtA := SqrtRatioAtTick(tickLower)
	sqrtB := SqrtRatioAtTick(tickUpper)
	amount0, amount1, err := AmountsForLiquidity(p.SqrtPriceX96, sqrtA, sqrtB, liquidity, true)
	if err != nil {
		return res, err
	}
	pos := p.positions[posID]
	if pos == nil {
		pos = &Position{ID: posID, Owner: owner, TickLower: tickLower, TickUpper: tickUpper}
		p.positions[posID] = pos
		p.insertPosition(posID)
		p.structDirty = true
	} else {
		if pos.Owner != owner {
			return res, ErrNotPositionOwner
		}
		if pos.TickLower != tickLower || pos.TickUpper != tickUpper {
			return res, ErrInvalidTickRange
		}
	}
	if _, err := p.updateTick(tickLower, liquidity, true, false); err != nil {
		return res, err
	}
	if _, err := p.updateTick(tickUpper, liquidity, true, true); err != nil {
		return res, err
	}
	p.updatePositionFees(pos)
	pos.Liquidity = u256.Add(pos.Liquidity, liquidity)
	if p.Tick >= tickLower && p.Tick < tickUpper {
		p.Liquidity = u256.Add(p.Liquidity, liquidity)
	}
	p.Reserve0 = u256.Add(p.Reserve0, amount0)
	p.Reserve1 = u256.Add(p.Reserve1, amount1)
	p.markHeaderDirty()
	res = MintResult{PositionID: posID, Liquidity: liquidity, Amount0: amount0, Amount1: amount1}
	return res, nil
}

// BurnResult reports the principal a burn released into TokensOwed.
type BurnResult struct {
	Amount0 u256.Int
	Amount1 u256.Int
	// Deleted reports whether the position was removed entirely (no
	// liquidity and no owed tokens remain).
	Deleted bool
}

// Burn removes liquidity from a position; the released principal is added
// to TokensOwed for later collection, matching Uniswap's two-step burn+
// collect flow. A position with zero remaining liquidity and zero owed
// tokens is deleted.
func (p *Pool) Burn(posID, caller string, liquidity u256.Int) (BurnResult, error) {
	var res BurnResult
	pos := p.positions[posID]
	if pos == nil {
		return res, ErrPositionNotFound
	}
	if pos.Owner != caller {
		return res, ErrNotPositionOwner
	}
	if liquidity.Gt(pos.Liquidity) {
		return res, ErrInsufficientLiq
	}
	if liquidity.IsZero() {
		// A zero burn is a "poke": refresh fee accounting only.
		p.updatePositionFees(pos)
		return res, nil
	}
	// As in Mint, resolve the released amounts before mutating: the only
	// error past this point (insufficient tick liquidity) is caught at
	// the first updateTick call, before any state change sticks.
	sqrtA := SqrtRatioAtTick(pos.TickLower)
	sqrtB := SqrtRatioAtTick(pos.TickUpper)
	amount0, amount1, err := AmountsForLiquidity(p.SqrtPriceX96, sqrtA, sqrtB, liquidity, false)
	if err != nil {
		return res, err
	}
	if _, err := p.updateTick(pos.TickLower, liquidity, false, false); err != nil {
		return res, err
	}
	if _, err := p.updateTick(pos.TickUpper, liquidity, false, true); err != nil {
		return res, err
	}
	p.updatePositionFees(pos)
	pos.Liquidity = u256.Sub(pos.Liquidity, liquidity)
	if p.Tick >= pos.TickLower && p.Tick < pos.TickUpper {
		p.Liquidity = u256.Sub(p.Liquidity, liquidity)
		p.markHeaderDirty()
	}
	pos.TokensOwed0 = u256.Add(pos.TokensOwed0, amount0)
	pos.TokensOwed1 = u256.Add(pos.TokensOwed1, amount1)
	res.Amount0, res.Amount1 = amount0, amount1
	return res, nil
}

// Collect withdraws up to (amount0Req, amount1Req) of the owed tokens from
// a position, returning what was actually paid. Collecting everything from
// a zero-liquidity position deletes it.
func (p *Pool) Collect(posID, caller string, amount0Req, amount1Req u256.Int) (paid0, paid1 u256.Int, err error) {
	pos := p.positions[posID]
	if pos == nil {
		return u256.Zero, u256.Zero, ErrPositionNotFound
	}
	if pos.Owner != caller {
		return u256.Zero, u256.Zero, ErrNotPositionOwner
	}
	p.updatePositionFees(pos)
	paid0 = u256.Min(amount0Req, pos.TokensOwed0)
	paid1 = u256.Min(amount1Req, pos.TokensOwed1)
	pos.TokensOwed0 = u256.Sub(pos.TokensOwed0, paid0)
	pos.TokensOwed1 = u256.Sub(pos.TokensOwed1, paid1)
	p.Reserve0 = u256.Sub(p.Reserve0, paid0)
	p.Reserve1 = u256.Sub(p.Reserve1, paid1)
	if !paid0.IsZero() || !paid1.IsZero() {
		p.markHeaderDirty()
	}
	if pos.Liquidity.IsZero() && pos.TokensOwed0.IsZero() && pos.TokensOwed1.IsZero() {
		delete(p.positions, posID)
		p.removePosition(posID)
		p.structDirty = true
		p.markPositionDirty(posID)
	}
	return paid0, paid1, nil
}

// SwapResult reports the settled amounts of a swap.
type SwapResult struct {
	AmountIn     u256.Int // input consumed, fee included
	AmountOut    u256.Int // output produced
	FeeAmount    u256.Int // portion of AmountIn distributed to LPs
	SqrtPriceX96 u256.Int // price after the swap
	Tick         int32
	TicksCrossed int
}

// Swap executes a swap against the pool.
//
//   - zeroForOne: true to sell token0 for token1 (price decreases).
//   - exactIn: true when amountSpecified is the input amount; false when it
//     is the desired output amount.
//   - sqrtPriceLimitX96: the price beyond which the swap will not proceed
//     (u256.Zero selects the widest permissible limit).
func (p *Pool) Swap(zeroForOne, exactIn bool, amountSpecified, sqrtPriceLimitX96 u256.Int) (SwapResult, error) {
	var res SwapResult
	if amountSpecified.IsZero() {
		return res, ErrZeroAmount
	}
	if sqrtPriceLimitX96.IsZero() {
		if zeroForOne {
			sqrtPriceLimitX96 = u256.Add(MinSqrtRatio, u256.One)
		} else {
			sqrtPriceLimitX96 = u256.Sub(MaxSqrtRatio, u256.One)
		}
	}
	if zeroForOne {
		if !sqrtPriceLimitX96.Lt(p.SqrtPriceX96) || !sqrtPriceLimitX96.Gt(MinSqrtRatio) {
			return res, ErrPriceLimit
		}
	} else {
		if !sqrtPriceLimitX96.Gt(p.SqrtPriceX96) || !sqrtPriceLimitX96.Lt(MaxSqrtRatio) {
			return res, ErrPriceLimit
		}
	}

	remaining := amountSpecified
	sqrtPrice := p.SqrtPriceX96
	tick := p.Tick
	liquidity := p.Liquidity
	fgGlobal := p.FeeGrowthGlobal0X128
	if !zeroForOne {
		fgGlobal = p.FeeGrowthGlobal1X128
	}

	for !remaining.IsZero() && !sqrtPrice.Eq(sqrtPriceLimitX96) {
		nextTick, found := p.nextInitializedTick(tick, zeroForOne)
		if zeroForOne && found {
			// nextInitializedTick(lte) may return the current tick itself;
			// we need the next boundary strictly below the price.
			if nextTick == tick && sqrtPrice.Eq(SqrtRatioAtTick(tick)) {
				nextTick, found = p.nextInitializedTick(tick-1, true)
			}
		}
		sqrtTarget := SqrtRatioAtTick(nextTick)
		// Clamp the step target by the user's price limit.
		if zeroForOne {
			if sqrtTarget.Lt(sqrtPriceLimitX96) {
				sqrtTarget = sqrtPriceLimitX96
			}
		} else {
			if sqrtTarget.Gt(sqrtPriceLimitX96) {
				sqrtTarget = sqrtPriceLimitX96
			}
		}

		if liquidity.IsZero() {
			// No liquidity in this range: jump to the boundary.
			sqrtPrice = sqrtTarget
		} else {
			step, err := ComputeSwapStep(sqrtPrice, sqrtTarget, liquidity, remaining, p.FeePips, exactIn)
			if err != nil {
				return res, err
			}
			sqrtPrice = step.SqrtPriceNextX96
			if exactIn {
				consumed := u256.Add(step.AmountIn, step.FeeAmount)
				if consumed.Gt(remaining) {
					consumed = remaining
				}
				remaining = u256.Sub(remaining, consumed)
				res.AmountIn = u256.Add(res.AmountIn, consumed)
				res.AmountOut = u256.Add(res.AmountOut, step.AmountOut)
			} else {
				remaining = u256.Sub(remaining, step.AmountOut)
				res.AmountOut = u256.Add(res.AmountOut, step.AmountOut)
				res.AmountIn = u256.Add(res.AmountIn, u256.Add(step.AmountIn, step.FeeAmount))
			}
			res.FeeAmount = u256.Add(res.FeeAmount, step.FeeAmount)
			if !liquidity.IsZero() {
				growth, _ := u256.MulDiv(step.FeeAmount, u256.Q128, liquidity)
				fgGlobal = u256.Add(fgGlobal, growth)
			}
		}

		if sqrtPrice.Eq(SqrtRatioAtTick(nextTick)) && found {
			// Crossed an initialized tick: flip fee growth outside and
			// apply the net liquidity change.
			info := p.ticks[nextTick]
			if info != nil {
				p.markTickDirty(nextTick)
				if zeroForOne {
					info.FeeGrowthOutside0X128 = u256.Sub(fgGlobal, info.FeeGrowthOutside0X128)
					info.FeeGrowthOutside1X128 = u256.Sub(p.FeeGrowthGlobal1X128, info.FeeGrowthOutside1X128)
				} else {
					info.FeeGrowthOutside0X128 = u256.Sub(p.FeeGrowthGlobal0X128, info.FeeGrowthOutside0X128)
					info.FeeGrowthOutside1X128 = u256.Sub(fgGlobal, info.FeeGrowthOutside1X128)
				}
				if zeroForOne {
					// Crossing right-to-left: subtract the net.
					liquidity = u256.Sub(u256.Add(liquidity, info.LiquidityNetSub), info.LiquidityNetAdd)
				} else {
					liquidity = u256.Sub(u256.Add(liquidity, info.LiquidityNetAdd), info.LiquidityNetSub)
				}
			}
			res.TicksCrossed++
			if zeroForOne {
				tick = nextTick - 1
			} else {
				tick = nextTick
			}
		} else if !sqrtPrice.Eq(p.SqrtPriceX96) {
			tick = TickAtSqrtRatio(sqrtPrice)
		}

		if !found && sqrtPrice.Eq(SqrtRatioAtTick(nextTick)) {
			break // ran out of initialized ticks
		}
	}

	// Commit state.
	p.markHeaderDirty()
	p.SqrtPriceX96 = sqrtPrice
	p.Tick = tick
	p.Liquidity = liquidity
	if zeroForOne {
		p.FeeGrowthGlobal0X128 = fgGlobal
		p.Reserve0 = u256.Add(p.Reserve0, res.AmountIn)
		p.Reserve1 = u256.Sub(p.Reserve1, res.AmountOut)
	} else {
		p.FeeGrowthGlobal1X128 = fgGlobal
		p.Reserve1 = u256.Add(p.Reserve1, res.AmountIn)
		p.Reserve0 = u256.Sub(p.Reserve0, res.AmountOut)
	}
	res.SqrtPriceX96 = sqrtPrice
	res.Tick = tick
	return res, nil
}

// FlashFn receives the loaned amounts and returns the amounts repaid. The
// pool verifies repayment covers principal plus fee.
type FlashFn func(amount0, amount1 u256.Int) (repay0, repay1 u256.Int)

// Flash lends (amount0, amount1) for the duration of the callback; the
// callback must repay principal plus the pool fee or the whole operation is
// reverted (no state change).
func (p *Pool) Flash(amount0, amount1 u256.Int, fn FlashFn) error {
	if amount0.Gt(p.Reserve0) || amount1.Gt(p.Reserve1) {
		return ErrAmountTooLarge
	}
	fee0, _ := u256.MulDivRoundingUp(amount0, u256.FromUint64(uint64(p.FeePips)), u256.FromUint64(feeDenominator))
	fee1, _ := u256.MulDivRoundingUp(amount1, u256.FromUint64(uint64(p.FeePips)), u256.FromUint64(feeDenominator))
	repay0, repay1 := fn(amount0, amount1)
	if repay0.Lt(u256.Add(amount0, fee0)) || repay1.Lt(u256.Add(amount1, fee1)) {
		return ErrFlashNotRepaid
	}
	p.markHeaderDirty()
	p.Reserve0 = u256.Add(u256.Sub(p.Reserve0, amount0), repay0)
	p.Reserve1 = u256.Add(u256.Sub(p.Reserve1, amount1), repay1)
	// Flash fees accrue to in-range liquidity like swap fees.
	if !p.Liquidity.IsZero() {
		g0, _ := u256.MulDiv(u256.Sub(repay0, amount0), u256.Q128, p.Liquidity)
		g1, _ := u256.MulDiv(u256.Sub(repay1, amount1), u256.Q128, p.Liquidity)
		p.FeeGrowthGlobal0X128 = u256.Add(p.FeeGrowthGlobal0X128, g0)
		p.FeeGrowthGlobal1X128 = u256.Add(p.FeeGrowthGlobal1X128, g1)
	}
	return nil
}
