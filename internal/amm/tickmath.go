// Package amm implements a Uniswap-V3-style constant-function market maker
// with concentrated liquidity: Q64.96 sqrt-price arithmetic, tick-indexed
// liquidity, per-position fee-growth accounting, swaps (exact input and
// exact output), mints, burns, collects, and flash loans.
//
// The same engine backs the on-mainchain baseline AMM, the ammBoost
// sidechain executor, and TokenBank's pool-state reconstruction, satisfying
// the paper's requirement that layer-2 processing follows "the same logic
// adopted by the AMM itself".
package amm

import (
	"math/big"
	"sync"

	"ammboost/internal/u256"
)

// Tick bounds, matching Uniswap V3: price = 1.0001^tick must fit the
// Q64.96 sqrt-price representation.
const (
	MinTick int32 = -887272
	MaxTick int32 = 887272
)

var (
	// MinSqrtRatio is SqrtRatioAtTick(MinTick).
	MinSqrtRatio = SqrtRatioAtTick(MinTick)
	// MaxSqrtRatio is SqrtRatioAtTick(MaxTick).
	MaxSqrtRatio = SqrtRatioAtTick(MaxTick)
)

// tickRatioCache memoizes SqrtRatioAtTick: experiments touch a small set of
// ticks millions of times.
var tickRatioCache sync.Map // int32 -> u256.Int

// SqrtRatioAtTick returns floor(sqrt(1.0001^tick) * 2^96) as a Q64.96 value.
//
// It is computed with 300-bit big.Float arithmetic (deterministic: fixed
// precision, round-to-nearest-even), rather than Uniswap's magic-constant
// product chain; both approximate the same real number to well below one
// ulp of the Q64.96 grid over the supported tick range.
func SqrtRatioAtTick(tick int32) u256.Int {
	if tick < MinTick || tick > MaxTick {
		panic("amm: tick out of range")
	}
	if v, ok := tickRatioCache.Load(tick); ok {
		return v.(u256.Int)
	}
	v := computeSqrtRatio(tick)
	tickRatioCache.Store(tick, v)
	return v
}

const tickFloatPrec = 300

func computeSqrtRatio(tick int32) u256.Int {
	// base = 1.0001 at 300-bit precision.
	base := new(big.Float).SetPrec(tickFloatPrec).Quo(
		new(big.Float).SetPrec(tickFloatPrec).SetInt64(10001),
		new(big.Float).SetPrec(tickFloatPrec).SetInt64(10000),
	)
	neg := tick < 0
	n := uint32(tick)
	if neg {
		n = uint32(-tick)
	}
	// pow = 1.0001^|tick| by exponentiation by squaring.
	pow := new(big.Float).SetPrec(tickFloatPrec).SetInt64(1)
	sq := new(big.Float).SetPrec(tickFloatPrec).Set(base)
	for n > 0 {
		if n&1 == 1 {
			pow.Mul(pow, sq)
		}
		sq.Mul(sq, sq)
		n >>= 1
	}
	if neg {
		pow.Quo(new(big.Float).SetPrec(tickFloatPrec).SetInt64(1), pow)
	}
	pow.Sqrt(pow)
	// Scale by 2^96 and floor.
	scale := new(big.Float).SetPrec(tickFloatPrec).SetInt(new(big.Int).Lsh(big.NewInt(1), 96))
	pow.Mul(pow, scale)
	out, _ := pow.Int(nil)
	v, overflow := u256.FromBig(out)
	if overflow {
		panic("amm: sqrt ratio overflow")
	}
	return v
}

// TickAtSqrtRatio returns the largest tick t such that
// SqrtRatioAtTick(t) <= sqrtPriceX96. It panics if sqrtPriceX96 is outside
// [MinSqrtRatio, MaxSqrtRatio).
func TickAtSqrtRatio(sqrtPriceX96 u256.Int) int32 {
	if sqrtPriceX96.Lt(MinSqrtRatio) || !sqrtPriceX96.Lt(MaxSqrtRatio) {
		panic("amm: sqrt price out of range")
	}
	lo, hi := MinTick, MaxTick
	// Invariant: SqrtRatioAtTick(lo) <= sqrtPriceX96 < SqrtRatioAtTick(hi+1).
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if SqrtRatioAtTick(mid).Cmp(sqrtPriceX96) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
