package amm

import "ammboost/internal/u256"

// LiquidityForAmount0 returns the maximum liquidity fundable with amount0 of
// token0 over the price range [sqrtA, sqrtB]:
//
//	L = amount0 * sqrtA * sqrtB / (2^96 * (sqrtB - sqrtA))
func LiquidityForAmount0(sqrtA, sqrtB, amount0 u256.Int) u256.Int {
	if sqrtA.Gt(sqrtB) {
		sqrtA, sqrtB = sqrtB, sqrtA
	}
	intermediate, overflow := u256.MulDiv(sqrtA, sqrtB, u256.Q96)
	if overflow {
		return u256.Zero
	}
	diff := u256.Sub(sqrtB, sqrtA)
	if diff.IsZero() {
		return u256.Zero
	}
	out, overflow := u256.MulDiv(amount0, intermediate, diff)
	if overflow {
		return u256.Zero
	}
	return out
}

// LiquidityForAmount1 returns the maximum liquidity fundable with amount1 of
// token1 over the price range [sqrtA, sqrtB]:
//
//	L = amount1 * 2^96 / (sqrtB - sqrtA)
func LiquidityForAmount1(sqrtA, sqrtB, amount1 u256.Int) u256.Int {
	if sqrtA.Gt(sqrtB) {
		sqrtA, sqrtB = sqrtB, sqrtA
	}
	diff := u256.Sub(sqrtB, sqrtA)
	if diff.IsZero() {
		return u256.Zero
	}
	out, overflow := u256.MulDiv(amount1, u256.Q96, diff)
	if overflow {
		return u256.Zero
	}
	return out
}

// LiquidityForAmounts computes the maximum pool liquidity that the desired
// token amounts can fund given the current price sqrtP and the position
// range [sqrtA, sqrtB]. This mirrors Uniswap's getLiquidityForAmounts used
// by the position manager when processing a mint.
func LiquidityForAmounts(sqrtP, sqrtA, sqrtB, amount0, amount1 u256.Int) u256.Int {
	if sqrtA.Gt(sqrtB) {
		sqrtA, sqrtB = sqrtB, sqrtA
	}
	switch {
	case !sqrtP.Gt(sqrtA): // price below range: all token0
		return LiquidityForAmount0(sqrtA, sqrtB, amount0)
	case sqrtP.Lt(sqrtB): // price in range: limited by the scarcer side
		l0 := LiquidityForAmount0(sqrtP, sqrtB, amount0)
		l1 := LiquidityForAmount1(sqrtA, sqrtP, amount1)
		return u256.Min(l0, l1)
	default: // price above range: all token1
		return LiquidityForAmount1(sqrtA, sqrtB, amount1)
	}
}

// AmountsForLiquidity returns the token amounts represented by liquidity L
// over range [sqrtA, sqrtB] at current price sqrtP, rounding up when
// roundUp is true (amounts owed to the pool on mint) and down otherwise
// (amounts paid out on burn).
func AmountsForLiquidity(sqrtP, sqrtA, sqrtB, liquidity u256.Int, roundUp bool) (amount0, amount1 u256.Int, err error) {
	if sqrtA.Gt(sqrtB) {
		sqrtA, sqrtB = sqrtB, sqrtA
	}
	switch {
	case !sqrtP.Gt(sqrtA): // below range
		amount0, err = Amount0Delta(sqrtA, sqrtB, liquidity, roundUp)
		return amount0, u256.Zero, err
	case sqrtP.Lt(sqrtB): // in range
		amount0, err = Amount0Delta(sqrtP, sqrtB, liquidity, roundUp)
		if err != nil {
			return u256.Zero, u256.Zero, err
		}
		amount1, err = Amount1Delta(sqrtA, sqrtP, liquidity, roundUp)
		return amount0, amount1, err
	default: // above range
		amount1, err = Amount1Delta(sqrtA, sqrtB, liquidity, roundUp)
		return u256.Zero, amount1, err
	}
}
