package amm

import (
	"math/rand"
	"testing"

	"ammboost/internal/u256"
)

// newTestPool creates a pool at price 1.0 (tick 0) with spacing 60.
func newTestPool(t *testing.T) *Pool {
	t.Helper()
	p, err := NewPool("A", "B", 3000, 60, u256.Q96)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func liq(v uint64) u256.Int { return u256.FromUint64(v) }

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool("A", "B", 3000, 60, u256.Zero); err == nil {
		t.Error("zero price should be rejected")
	}
	if _, err := NewPool("A", "B", 3000, 0, u256.Q96); err == nil {
		t.Error("zero tick spacing should be rejected")
	}
	p, err := NewPool("A", "B", 3000, 60, u256.Q96)
	if err != nil || p.Tick != 0 {
		t.Errorf("pool at price 1 should sit at tick 0, got %d err %v", p.Tick, err)
	}
}

func TestMintAmounts(t *testing.T) {
	p := newTestPool(t)
	// Symmetric in-range position around tick 0 requires both tokens.
	res, err := p.Mint("pos1", "lp1", -600, 600, liq(1_000_000))
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if res.Amount0.IsZero() || res.Amount1.IsZero() {
		t.Errorf("in-range mint should require both tokens, got %s / %s", res.Amount0, res.Amount1)
	}
	// Symmetric range at price 1: amounts should be nearly equal.
	hi, lo := u256.MaxOf(res.Amount0, res.Amount1), u256.Min(res.Amount0, res.Amount1)
	if u256.Sub(hi, lo).Gt(u256.FromUint64(2)) {
		t.Errorf("symmetric mint amounts should match: %s vs %s", res.Amount0, res.Amount1)
	}

	// Range entirely above the current price requires only token0.
	res0, err := p.Mint("pos2", "lp1", 600, 1200, liq(1_000_000))
	if err != nil {
		t.Fatalf("Mint above: %v", err)
	}
	if res0.Amount0.IsZero() || !res0.Amount1.IsZero() {
		t.Errorf("above-range mint wants token0 only, got %s / %s", res0.Amount0, res0.Amount1)
	}

	// Range entirely below requires only token1.
	res1, err := p.Mint("pos3", "lp1", -1200, -600, liq(1_000_000))
	if err != nil {
		t.Fatalf("Mint below: %v", err)
	}
	if !res1.Amount0.IsZero() || res1.Amount1.IsZero() {
		t.Errorf("below-range mint wants token1 only, got %s / %s", res1.Amount0, res1.Amount1)
	}
}

func TestMintValidation(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("x", "lp", 600, -600, liq(1)); err != ErrInvalidTickRange {
		t.Errorf("inverted range: %v", err)
	}
	if _, err := p.Mint("x", "lp", -61, 600, liq(1)); err != ErrTickNotSpaced {
		t.Errorf("unaligned tick: %v", err)
	}
	if _, err := p.Mint("x", "lp", -600, 600, u256.Zero); err != ErrLiquidityZero {
		t.Errorf("zero liquidity: %v", err)
	}
	if _, err := p.Mint("x", "lp", -600, 600, liq(10)); err != nil {
		t.Fatalf("mint: %v", err)
	}
	if _, err := p.Mint("x", "other", -600, 600, liq(10)); err != ErrNotPositionOwner {
		t.Errorf("owner mismatch: %v", err)
	}
	if _, err := p.Mint("x", "lp", -1200, 600, liq(10)); err != ErrInvalidTickRange {
		t.Errorf("range mismatch on existing position: %v", err)
	}
}

func TestSwapExactInZeroForOne(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -6000, 6000, liq(10_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	in := u256.FromUint64(1_000_000)
	res, err := p.Swap(true, true, in, u256.Zero)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if !res.AmountIn.Eq(in) {
		t.Errorf("exact-in should consume all input: consumed %s of %s", res.AmountIn, in)
	}
	if res.AmountOut.IsZero() || !res.AmountOut.Lt(in) {
		// At price ~1, output ≈ input*(1-fee) minus slippage.
		t.Errorf("unexpected output %s for input %s", res.AmountOut, in)
	}
	if !p.SqrtPriceX96.Lt(u256.Q96) {
		t.Error("selling token0 should decrease the price")
	}
	if res.FeeAmount.IsZero() {
		t.Error("fee should be charged")
	}
	// Fee ≈ 0.3% of input.
	wantFee := u256.Div(u256.Mul(in, u256.FromUint64(3000)), u256.FromUint64(1_000_000))
	diff := u256.Sub(u256.MaxOf(res.FeeAmount, wantFee), u256.Min(res.FeeAmount, wantFee))
	if diff.Gt(u256.FromUint64(5)) {
		t.Errorf("fee %s, want ~%s", res.FeeAmount, wantFee)
	}
}

func TestSwapExactInOneForZero(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -6000, 6000, liq(10_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	in := u256.FromUint64(500_000)
	res, err := p.Swap(false, true, in, u256.Zero)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if !p.SqrtPriceX96.Gt(u256.Q96) {
		t.Error("selling token1 should increase the price")
	}
	if res.AmountOut.IsZero() {
		t.Error("no output")
	}
}

func TestSwapExactOut(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -6000, 6000, liq(10_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	want := u256.FromUint64(250_000)
	res, err := p.Swap(true, false, want, u256.Zero)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if !res.AmountOut.Eq(want) {
		t.Errorf("exact-out delivered %s, want %s", res.AmountOut, want)
	}
	if !res.AmountIn.Gt(want) {
		// Input must exceed output at price ~1 because of the fee.
		t.Errorf("input %s should exceed output %s (fee)", res.AmountIn, want)
	}
}

func TestSwapPriceLimit(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -6000, 6000, liq(1_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	limit := SqrtRatioAtTick(-60) // allow only a small price move
	res, err := p.Swap(true, true, u256.FromUint64(1_000_000_000_000), limit)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if !p.SqrtPriceX96.Eq(limit) {
		t.Errorf("price should stop at the limit: %s vs %s", p.SqrtPriceX96, limit)
	}
	if !res.AmountIn.Lt(u256.FromUint64(1_000_000_000_000)) {
		t.Error("swap should have been partially filled")
	}
}

func TestSwapInvalidLimit(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -6000, 6000, liq(1_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	// Limit on the wrong side of the current price.
	if _, err := p.Swap(true, true, u256.FromUint64(10), SqrtRatioAtTick(60)); err != ErrPriceLimit {
		t.Errorf("want ErrPriceLimit, got %v", err)
	}
	if _, err := p.Swap(false, true, u256.FromUint64(10), SqrtRatioAtTick(-60)); err != ErrPriceLimit {
		t.Errorf("want ErrPriceLimit, got %v", err)
	}
	if _, err := p.Swap(true, true, u256.Zero, u256.Zero); err != ErrZeroAmount {
		t.Errorf("want ErrZeroAmount, got %v", err)
	}
}

func TestSwapCrossesTicks(t *testing.T) {
	p := newTestPool(t)
	// Narrow in-range position plus a wide backstop.
	if _, err := p.Mint("narrow", "lp", -60, 60, liq(5_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if _, err := p.Mint("wide", "lp", -12000, 12000, liq(1_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	startLiq := p.Liquidity
	res, err := p.Swap(true, true, u256.FromUint64(50_000_000), u256.Zero)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if res.TicksCrossed == 0 {
		t.Error("expected to cross the narrow position's lower tick")
	}
	if p.Tick >= -60 {
		t.Errorf("price should be below the narrow range, tick=%d", p.Tick)
	}
	if !p.Liquidity.Lt(startLiq) {
		t.Errorf("liquidity should drop after leaving the narrow range: %s -> %s", startLiq, p.Liquidity)
	}
}

func TestBurnAndCollectRoundTrip(t *testing.T) {
	p := newTestPool(t)
	mintRes, err := p.Mint("pos", "lp", -600, 600, liq(1_000_000_000))
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	burnRes, err := p.Burn("pos", "lp", liq(1_000_000_000))
	if err != nil {
		t.Fatalf("Burn: %v", err)
	}
	// Burn returns at most what the mint took (rounding favors the pool).
	if burnRes.Amount0.Gt(mintRes.Amount0) || burnRes.Amount1.Gt(mintRes.Amount1) {
		t.Errorf("burn returned more than minted: %s/%s > %s/%s",
			burnRes.Amount0, burnRes.Amount1, mintRes.Amount0, mintRes.Amount1)
	}
	diff0 := u256.Sub(mintRes.Amount0, burnRes.Amount0)
	if diff0.Gt(u256.FromUint64(2)) {
		t.Errorf("mint/burn rounding gap too large: %s", diff0)
	}
	paid0, paid1, err := p.Collect("pos", "lp", u256.Max, u256.Max)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !paid0.Eq(burnRes.Amount0) || !paid1.Eq(burnRes.Amount1) {
		t.Errorf("collect %s/%s, want %s/%s", paid0, paid1, burnRes.Amount0, burnRes.Amount1)
	}
	if p.Position("pos") != nil {
		t.Error("fully-collected empty position should be deleted")
	}
	if !p.Liquidity.IsZero() {
		t.Errorf("pool liquidity should be zero, got %s", p.Liquidity)
	}
}

func TestBurnValidation(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Burn("nope", "lp", liq(1)); err != ErrPositionNotFound {
		t.Errorf("missing position: %v", err)
	}
	if _, err := p.Mint("pos", "lp", -600, 600, liq(100)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if _, err := p.Burn("pos", "other", liq(1)); err != ErrNotPositionOwner {
		t.Errorf("wrong owner: %v", err)
	}
	if _, err := p.Burn("pos", "lp", liq(101)); err != ErrInsufficientLiq {
		t.Errorf("over-burn: %v", err)
	}
}

func TestFeesAccrueToLP(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -6000, 6000, liq(10_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	swapIn := u256.FromUint64(10_000_000)
	res, err := p.Swap(true, true, swapIn, u256.Zero)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	// Poke the position, then collect fees.
	if _, err := p.Burn("pos", "lp", u256.Zero); err != nil {
		t.Fatalf("poke: %v", err)
	}
	pos := p.Position("pos")
	if pos.TokensOwed0.IsZero() {
		t.Fatal("LP should have accrued token0 fees")
	}
	// The sole LP gets (almost) the entire fee; flooring may shave dust.
	if pos.TokensOwed0.Gt(res.FeeAmount) {
		t.Errorf("owed %s exceeds collected fee %s", pos.TokensOwed0, res.FeeAmount)
	}
	gap := u256.Sub(res.FeeAmount, pos.TokensOwed0)
	if gap.Gt(u256.FromUint64(2)) {
		t.Errorf("sole LP should earn nearly the whole fee: owed %s of %s", pos.TokensOwed0, res.FeeAmount)
	}
}

func TestFeesSplitProportionally(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("a", "lpA", -6000, 6000, liq(3_000_000_000)); err != nil {
		t.Fatalf("Mint a: %v", err)
	}
	if _, err := p.Mint("b", "lpB", -6000, 6000, liq(1_000_000_000)); err != nil {
		t.Fatalf("Mint b: %v", err)
	}
	if _, err := p.Swap(true, true, u256.FromUint64(40_000_000), u256.Zero); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if _, err := p.Burn("a", "lpA", u256.Zero); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Burn("b", "lpB", u256.Zero); err != nil {
		t.Fatal(err)
	}
	owedA := p.Position("a").TokensOwed0
	owedB := p.Position("b").TokensOwed0
	if owedA.IsZero() || owedB.IsZero() {
		t.Fatalf("both LPs should earn fees: %s / %s", owedA, owedB)
	}
	// lpA provided 3x the liquidity → ~3x the fees.
	ratio := u256.Div(u256.Mul(owedA, u256.FromUint64(100)), owedB)
	r, _ := ratio.Uint64()
	if r < 295 || r > 305 {
		t.Errorf("fee ratio = %d/100, want ~300", r)
	}
}

func TestFlashLoan(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -6000, 6000, liq(10_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	r0, r1 := p.Reserve0, p.Reserve1
	amount := u256.FromUint64(1_000_000)
	fee := u256.DivRoundingUp(u256.Mul(amount, u256.FromUint64(3000)), u256.FromUint64(1_000_000))
	err := p.Flash(amount, u256.Zero, func(a0, a1 u256.Int) (u256.Int, u256.Int) {
		if !a0.Eq(amount) || !a1.IsZero() {
			t.Errorf("callback got %s/%s", a0, a1)
		}
		return u256.Add(a0, fee), u256.Zero
	})
	if err != nil {
		t.Fatalf("Flash: %v", err)
	}
	if !p.Reserve0.Eq(u256.Add(r0, fee)) || !p.Reserve1.Eq(r1) {
		t.Errorf("reserves after flash: %s/%s, want %s/%s", p.Reserve0, p.Reserve1, u256.Add(r0, fee), r1)
	}
	// Under-repayment must fail and leave state untouched.
	err = p.Flash(amount, u256.Zero, func(a0, a1 u256.Int) (u256.Int, u256.Int) {
		return a0, u256.Zero // no fee
	})
	if err != ErrFlashNotRepaid {
		t.Errorf("want ErrFlashNotRepaid, got %v", err)
	}
	if !p.Reserve0.Eq(u256.Add(r0, fee)) {
		t.Error("failed flash should not change reserves")
	}
	// Borrowing more than reserves must fail.
	if err := p.Flash(u256.Add(p.Reserve0, u256.One), u256.Zero, func(a0, a1 u256.Int) (u256.Int, u256.Int) {
		return a0, a1
	}); err != ErrAmountTooLarge {
		t.Errorf("want ErrAmountTooLarge, got %v", err)
	}
}

func TestSwapRoundTripConservation(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -6000, 6000, liq(50_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	// A → B → A round trip must lose money to fees (no free lunch).
	in := u256.FromUint64(5_000_000)
	res1, err := p.Swap(true, true, in, u256.Zero)
	if err != nil {
		t.Fatalf("swap 1: %v", err)
	}
	res2, err := p.Swap(false, true, res1.AmountOut, u256.Zero)
	if err != nil {
		t.Fatalf("swap 2: %v", err)
	}
	if !res2.AmountOut.Lt(in) {
		t.Errorf("round trip returned %s for %s input; should lose fees", res2.AmountOut, in)
	}
}

func TestPoolClone(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos", "lp", -600, 600, liq(1_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	c := p.Clone()
	if _, err := c.Swap(true, true, u256.FromUint64(100_000), u256.Zero); err != nil {
		t.Fatalf("Swap clone: %v", err)
	}
	if !p.SqrtPriceX96.Eq(u256.Q96) {
		t.Error("swapping the clone must not move the original's price")
	}
	if _, err := c.Burn("pos", "lp", liq(1)); err != nil {
		t.Fatalf("Burn clone: %v", err)
	}
	if !p.Position("pos").Liquidity.Eq(liq(1_000_000_000)) {
		t.Error("clone burn must not touch original position")
	}
}

// TestReservesNeverNegative fuzzes a trading session and checks reserve
// conservation: reserves always cover the sum of what positions are owed.
func TestReservesNeverNegative(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("base", "lp", -12000, 12000, liq(100_000_000_000)); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		zeroForOne := r.Intn(2) == 0
		amt := u256.FromUint64(uint64(r.Intn(5_000_000) + 1))
		if _, err := p.Swap(zeroForOne, true, amt, u256.Zero); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	// Burn everything; reserves must cover the owed amounts.
	if _, err := p.Burn("base", "lp", liq(100_000_000_000)); err != nil {
		t.Fatalf("Burn: %v", err)
	}
	pos := p.Position("base")
	if p.Reserve0.Lt(pos.TokensOwed0) || p.Reserve1.Lt(pos.TokensOwed1) {
		t.Errorf("reserves %s/%s cannot cover owed %s/%s",
			p.Reserve0, p.Reserve1, pos.TokensOwed0, pos.TokensOwed1)
	}
	paid0, paid1, err := p.Collect("base", "lp", u256.Max, u256.Max)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if paid0.IsZero() && paid1.IsZero() {
		t.Error("collect should pay out principal and fees")
	}
}

func BenchmarkSwapExactIn(b *testing.B) {
	p, _ := NewPool("A", "B", 3000, 60, u256.Q96)
	if _, err := p.Mint("pos", "lp", -887220, 887220, u256.MustFromDecimal("100000000000000000000")); err != nil {
		b.Fatal(err)
	}
	in := u256.FromUint64(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zeroForOne := i%2 == 0 // alternate to keep the price centered
		if _, err := p.Swap(zeroForOne, true, in, u256.Zero); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMintBurn(b *testing.B) {
	p, _ := NewPool("A", "B", 3000, 60, u256.Q96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Mint("pos", "lp", -600, 600, liq(1_000_000)); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Burn("pos", "lp", liq(1_000_000)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- dirty tracking (incremental commitment hooks) ---

func TestDirtyTrackingMint(t *testing.T) {
	p := newTestPool(t)
	p.ClearDirty()
	if p.Dirty() {
		t.Fatal("fresh pool should be clean after ClearDirty")
	}
	if _, err := p.Mint("pos1", "lp1", -600, 600, liq(1_000_000)); err != nil {
		t.Fatal(err)
	}
	if !p.Dirty() || !p.HeaderDirty() || !p.StructurallyDirty() {
		t.Error("mint of a new position must dirty header and structure")
	}
	if _, ok := p.DirtyPositions()["pos1"]; !ok {
		t.Error("minted position not marked dirty")
	}
	for _, tick := range []int32{-600, 600} {
		if _, ok := p.DirtyTicks()[tick]; !ok {
			t.Errorf("tick %d not marked dirty by mint", tick)
		}
	}

	// A second mint into the same position is a value update, not a
	// structural change.
	p.ClearDirty()
	if _, err := p.Mint("pos1", "lp1", -600, 600, liq(500)); err != nil {
		t.Fatal(err)
	}
	if p.StructurallyDirty() {
		t.Error("adding liquidity to an existing position must not be structural")
	}
	if !p.Dirty() {
		t.Error("second mint should dirty the pool")
	}
}

// TestTakeDirtyDetaches pins the pipelined hand-off contract: TakeDirty
// moves the dirty sets out of the pool (leaving it clean and sharing no
// maps), so a commitment job may read the snapshot while the pool — and
// clones taken from it — accumulate the next epoch's changes.
func TestTakeDirtyDetaches(t *testing.T) {
	p := newTestPool(t)
	p.ClearDirty()
	if _, err := p.Mint("pos1", "lp1", -600, 600, liq(1_000_000)); err != nil {
		t.Fatal(err)
	}
	d := p.TakeDirty()
	if !d.Dirty() || !d.Header || !d.Structural {
		t.Error("snapshot should carry the mint's header + structural dirt")
	}
	if _, ok := d.Positions["pos1"]; !ok {
		t.Error("snapshot missing minted position")
	}
	if p.Dirty() {
		t.Error("pool should read clean after TakeDirty")
	}
	// New mutations land in fresh sets, not the detached snapshot.
	if _, err := p.Mint("pos2", "lp1", -1200, 1200, liq(500)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Positions["pos2"]; ok {
		t.Error("post-detach mutation leaked into the snapshot")
	}
	if _, ok := p.DirtyPositions()["pos2"]; !ok {
		t.Error("post-detach mutation not tracked by the pool's new sets")
	}
	// A clone taken after TakeDirty carries only the new dirt.
	c := p.Clone()
	if _, ok := c.DirtyPositions()["pos1"]; ok {
		t.Error("clone inherited detached dirt")
	}
	// An idle pool's snapshot is empty and cheap.
	p.ClearDirty()
	if d2 := p.TakeDirty(); d2.Dirty() {
		t.Error("clean pool's TakeDirty should report no dirt")
	}
}

func TestDirtyTrackingSwap(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos1", "lp1", -887220, 887220, liq(10_000_000)); err != nil {
		t.Fatal(err)
	}
	p.ClearDirty()
	if _, err := p.Swap(true, true, u256.FromUint64(10_000), u256.Zero); err != nil {
		t.Fatal(err)
	}
	if !p.HeaderDirty() {
		t.Error("swap must dirty the header")
	}
	if p.StructurallyDirty() {
		t.Error("swap without tick flips must not be structural")
	}
	if len(p.DirtyPositions()) != 0 {
		t.Error("swap must not dirty positions directly")
	}
}

func TestDirtyTrackingCollectDelete(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("base", "lp0", -887220, 887220, liq(10_000_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Mint("pos1", "lp1", -600, 600, liq(1_000_000)); err != nil {
		t.Fatal(err)
	}
	p.ClearDirty()
	if _, err := p.Burn("pos1", "lp1", liq(1_000_000)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Collect("pos1", "lp1", u256.Max, u256.Max); err != nil {
		t.Fatal(err)
	}
	if p.Position("pos1") != nil {
		t.Fatal("position should be deleted after full burn+collect")
	}
	if !p.StructurallyDirty() {
		t.Error("position deletion must be structural")
	}
	if _, ok := p.DirtyPositions()["pos1"]; !ok {
		t.Error("deleted position must be in the dirty set")
	}
	for _, id := range p.PositionKeys() {
		if id == "pos1" {
			t.Error("deleted position still in sorted index")
		}
	}
}

func TestPositionKeysSorted(t *testing.T) {
	p := newTestPool(t)
	for _, id := range []string{"zz", "aa", "mm", "bb"} {
		if _, err := p.Mint(id, "lp", -600, 600, liq(100_000)); err != nil {
			t.Fatal(err)
		}
	}
	keys := p.PositionKeys()
	if len(keys) != 4 {
		t.Fatalf("PositionKeys len = %d, want 4", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("PositionKeys not sorted: %v", keys)
		}
	}
}

func TestClonePreservesDirtyState(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.Mint("pos1", "lp1", -600, 600, liq(1_000_000)); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if !c.Dirty() || !c.StructurallyDirty() {
		t.Error("clone must preserve dirty state")
	}
	c.ClearDirty()
	if p.Dirty() == false {
		t.Error("clearing the clone must not clear the original")
	}
	if _, ok := p.DirtyPositions()["pos1"]; !ok {
		t.Error("original dirty set mutated through clone")
	}
}
