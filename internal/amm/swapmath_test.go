package amm

import (
	"testing"

	"ammboost/internal/u256"
)

func mustRatio(t *testing.T, tick int32) u256.Int {
	t.Helper()
	return SqrtRatioAtTick(tick)
}

func TestComputeSwapStepExactInReachesTarget(t *testing.T) {
	// Plenty of input: the step should stop exactly at the target price.
	cur, target := u256.Q96, mustRatio(t, -60)
	liq := u256.FromUint64(10_000_000_000)
	step, err := ComputeSwapStep(cur, target, liq, u256.FromUint64(1<<40), 3000, true)
	if err != nil {
		t.Fatal(err)
	}
	if !step.SqrtPriceNextX96.Eq(target) {
		t.Errorf("price stopped at %s, want target %s", step.SqrtPriceNextX96, target)
	}
	if step.AmountIn.IsZero() || step.AmountOut.IsZero() || step.FeeAmount.IsZero() {
		t.Errorf("amounts: in=%s out=%s fee=%s", step.AmountIn, step.AmountOut, step.FeeAmount)
	}
}

func TestComputeSwapStepExactInPartial(t *testing.T) {
	// Tiny input: the price must not reach the target, and the entire
	// remainder is consumed as input+fee.
	cur, target := u256.Q96, mustRatio(t, -600)
	liq := u256.FromUint64(10_000_000_000)
	in := u256.FromUint64(1_000)
	step, err := ComputeSwapStep(cur, target, liq, in, 3000, true)
	if err != nil {
		t.Fatal(err)
	}
	if step.SqrtPriceNextX96.Eq(target) {
		t.Error("tiny input should not reach the target")
	}
	total := u256.Add(step.AmountIn, step.FeeAmount)
	if !total.Eq(in) {
		t.Errorf("in+fee = %s, want all of %s", total, in)
	}
}

func TestComputeSwapStepExactOut(t *testing.T) {
	cur, target := u256.Q96, mustRatio(t, -600)
	liq := u256.FromUint64(10_000_000_000)
	want := u256.FromUint64(5_000)
	step, err := ComputeSwapStep(cur, target, liq, want, 3000, false)
	if err != nil {
		t.Fatal(err)
	}
	if step.AmountOut.Gt(want) {
		t.Errorf("out %s exceeds requested %s", step.AmountOut, want)
	}
	if step.AmountIn.IsZero() {
		t.Error("no input charged")
	}
}

func TestComputeSwapStepZeroFee(t *testing.T) {
	cur, target := u256.Q96, mustRatio(t, -60)
	liq := u256.FromUint64(1_000_000_000)
	step, err := ComputeSwapStep(cur, target, liq, u256.FromUint64(1<<40), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !step.FeeAmount.IsZero() {
		t.Errorf("zero-fee pool charged %s", step.FeeAmount)
	}
}

func TestComputeSwapStepDirectionOneForZero(t *testing.T) {
	cur, target := u256.Q96, mustRatio(t, 60)
	liq := u256.FromUint64(10_000_000_000)
	step, err := ComputeSwapStep(cur, target, liq, u256.FromUint64(1<<40), 3000, true)
	if err != nil {
		t.Fatal(err)
	}
	if !step.SqrtPriceNextX96.Gt(cur) {
		t.Error("one-for-zero should raise the price")
	}
}

func TestAmountDeltasRounding(t *testing.T) {
	a, b := mustRatio(t, -60), mustRatio(t, 60)
	liq := u256.FromUint64(999_999_937) // awkward prime-ish value
	up0, err := Amount0Delta(a, b, liq, true)
	if err != nil {
		t.Fatal(err)
	}
	down0, err := Amount0Delta(a, b, liq, false)
	if err != nil {
		t.Fatal(err)
	}
	if down0.Gt(up0) {
		t.Error("round-down exceeds round-up")
	}
	if u256.Sub(up0, down0).Gt(u256.One) {
		t.Error("rounding gap exceeds one unit")
	}
	up1, _ := Amount1Delta(a, b, liq, true)
	down1, _ := Amount1Delta(a, b, liq, false)
	if down1.Gt(up1) || u256.Sub(up1, down1).Gt(u256.One) {
		t.Error("amount1 rounding inconsistent")
	}
	// Argument order must not matter.
	swapped, _ := Amount0Delta(b, a, liq, true)
	if !swapped.Eq(up0) {
		t.Error("Amount0Delta should be symmetric in price order")
	}
}

func TestNextSqrtPriceRoundTrips(t *testing.T) {
	liq := u256.FromUint64(50_000_000_000)
	amount := u256.FromUint64(1_000_000)
	// Adding token0 then removing the amount0 actually absorbed must
	// come back above-or-equal to the start (rounding favors the pool).
	down, err := NextSqrtPriceFromAmount0(u256.Q96, liq, amount, true)
	if err != nil {
		t.Fatal(err)
	}
	if !down.Lt(u256.Q96) {
		t.Error("adding token0 must lower the price")
	}
	up, err := NextSqrtPriceFromAmount1(u256.Q96, liq, amount, true)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Gt(u256.Q96) {
		t.Error("adding token1 must raise the price")
	}
}

func TestNextSqrtPriceErrors(t *testing.T) {
	if _, err := NextSqrtPriceFromAmount0(u256.Q96, u256.Zero, u256.One, true); err != ErrLiquidityZero {
		t.Errorf("zero liquidity: %v", err)
	}
	// Removing more token1 than the price supports.
	if _, err := NextSqrtPriceFromAmount1(u256.FromUint64(1), u256.One, u256.Max, false); err == nil {
		t.Error("over-removal should fail")
	}
	// Zero amount is a no-op.
	p, err := NextSqrtPriceFromAmount0(u256.Q96, u256.One, u256.Zero, true)
	if err != nil || !p.Eq(u256.Q96) {
		t.Errorf("zero amount: %s, %v", p, err)
	}
}

func TestLiquidityForAmountsRegions(t *testing.T) {
	below, in, above := mustRatio(t, -600), u256.Q96, mustRatio(t, 600)
	amount := u256.FromUint64(1_000_000)
	// Price below the range: only token0 matters.
	l := LiquidityForAmounts(mustRatio(t, -1200), below, above, amount, u256.Zero)
	if l.IsZero() {
		t.Error("below range: token0 alone should fund liquidity")
	}
	// Price above the range: only token1 matters.
	l = LiquidityForAmounts(mustRatio(t, 1200), below, above, u256.Zero, amount)
	if l.IsZero() {
		t.Error("above range: token1 alone should fund liquidity")
	}
	// In range: the scarcer side limits.
	lBoth := LiquidityForAmounts(in, below, above, amount, amount)
	lScarce := LiquidityForAmounts(in, below, above, amount, u256.FromUint64(10))
	if !lScarce.Lt(lBoth) {
		t.Error("scarce token1 should limit in-range liquidity")
	}
}

func TestAmountsForLiquidityInverse(t *testing.T) {
	below, above := mustRatio(t, -600), mustRatio(t, 600)
	amount := u256.FromUint64(1_000_000)
	l := LiquidityForAmounts(u256.Q96, below, above, amount, amount)
	a0, a1, err := AmountsForLiquidity(u256.Q96, below, above, l, true)
	if err != nil {
		t.Fatal(err)
	}
	// Round-tripped amounts never exceed the inputs by more than a unit.
	if a0.Gt(u256.Add(amount, u256.One)) || a1.Gt(u256.Add(amount, u256.One)) {
		t.Errorf("amounts %s/%s exceed funding %s", a0, a1, amount)
	}
}

func BenchmarkComputeSwapStep(b *testing.B) {
	cur, target := u256.Q96, SqrtRatioAtTick(-60)
	liq := u256.FromUint64(10_000_000_000)
	in := u256.FromUint64(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeSwapStep(cur, target, liq, in, 3000, true); err != nil {
			b.Fatal(err)
		}
	}
}
