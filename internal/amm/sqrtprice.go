package amm

import (
	"errors"

	"ammboost/internal/u256"
)

// Errors returned by price/liquidity math.
var (
	ErrLiquidityZero    = errors.New("amm: zero liquidity")
	ErrPriceOverflow    = errors.New("amm: price computation overflow")
	ErrAmountTooLarge   = errors.New("amm: amount exceeds available reserves")
	ErrLiquidityTooBig  = errors.New("amm: liquidity overflow")
	ErrInvalidTickRange = errors.New("amm: invalid tick range")
)

// Amount0Delta returns the amount of token0 between prices sqrtA and sqrtB
// for liquidity L:
//
//	amount0 = L * 2^96 * (sqrtB - sqrtA) / (sqrtB * sqrtA)
//
// rounding up when roundUp is true (charging the user) and down otherwise
// (paying the user). Price arguments may be given in either order.
func Amount0Delta(sqrtA, sqrtB, liquidity u256.Int, roundUp bool) (u256.Int, error) {
	if sqrtA.Gt(sqrtB) {
		sqrtA, sqrtB = sqrtB, sqrtA
	}
	if sqrtA.IsZero() {
		return u256.Zero, ErrPriceOverflow
	}
	numerator1 := u256.Shl(liquidity, 96)
	numerator2 := u256.Sub(sqrtB, sqrtA)
	if roundUp {
		interim, overflow := u256.MulDivRoundingUp(numerator1, numerator2, sqrtB)
		if overflow {
			return u256.Zero, ErrPriceOverflow
		}
		return u256.DivRoundingUp(interim, sqrtA), nil
	}
	interim, overflow := u256.MulDiv(numerator1, numerator2, sqrtB)
	if overflow {
		return u256.Zero, ErrPriceOverflow
	}
	return u256.Div(interim, sqrtA), nil
}

// Amount1Delta returns the amount of token1 between prices sqrtA and sqrtB
// for liquidity L:
//
//	amount1 = L * (sqrtB - sqrtA) / 2^96
//
// with the same rounding convention as Amount0Delta.
func Amount1Delta(sqrtA, sqrtB, liquidity u256.Int, roundUp bool) (u256.Int, error) {
	if sqrtA.Gt(sqrtB) {
		sqrtA, sqrtB = sqrtB, sqrtA
	}
	diff := u256.Sub(sqrtB, sqrtA)
	var out u256.Int
	var overflow bool
	if roundUp {
		out, overflow = u256.MulDivRoundingUp(liquidity, diff, u256.Q96)
	} else {
		out, overflow = u256.MulDiv(liquidity, diff, u256.Q96)
	}
	if overflow {
		return u256.Zero, ErrPriceOverflow
	}
	return out, nil
}

// NextSqrtPriceFromAmount0 returns the price after adding (add=true) or
// removing (add=false) amount of token0 at price sqrtP with liquidity L.
// Adding token0 decreases the price. The result rounds up (in the pool's
// favor).
//
//	sqrtNext = L * 2^96 * sqrtP / (L * 2^96 ± amount * sqrtP)
func NextSqrtPriceFromAmount0(sqrtP, liquidity, amount u256.Int, add bool) (u256.Int, error) {
	if amount.IsZero() {
		return sqrtP, nil
	}
	if liquidity.IsZero() {
		return u256.Zero, ErrLiquidityZero
	}
	numerator1 := u256.Shl(liquidity, 96)
	product, mulOverflow := u256.MulOverflow(amount, sqrtP)
	if add {
		var denominator u256.Int
		if !mulOverflow {
			var carry bool
			denominator, carry = u256.AddOverflow(numerator1, product)
			if !carry {
				out, overflow := u256.MulDivRoundingUp(numerator1, sqrtP, denominator)
				if overflow {
					return u256.Zero, ErrPriceOverflow
				}
				return out, nil
			}
		}
		// Fallback: sqrtNext = ceil(L*2^96 / (L*2^96/sqrtP + amount)).
		denom := u256.Add(u256.Div(numerator1, sqrtP), amount)
		return u256.DivRoundingUp(numerator1, denom), nil
	}
	// Removing token0 increases the price; the product must not overflow
	// and the denominator must stay positive.
	if mulOverflow || !numerator1.Gt(product) {
		return u256.Zero, ErrAmountTooLarge
	}
	denominator := u256.Sub(numerator1, product)
	out, overflow := u256.MulDivRoundingUp(numerator1, sqrtP, denominator)
	if overflow {
		return u256.Zero, ErrPriceOverflow
	}
	return out, nil
}

// NextSqrtPriceFromAmount1 returns the price after adding (add=true) or
// removing (add=false) amount of token1 at price sqrtP with liquidity L.
// Adding token1 increases the price. The result rounds down (in the pool's
// favor).
//
//	sqrtNext = sqrtP ± amount * 2^96 / L
func NextSqrtPriceFromAmount1(sqrtP, liquidity, amount u256.Int, add bool) (u256.Int, error) {
	if liquidity.IsZero() {
		return u256.Zero, ErrLiquidityZero
	}
	if add {
		quotient, overflow := u256.MulDiv(amount, u256.Q96, liquidity)
		if overflow {
			return u256.Zero, ErrPriceOverflow
		}
		next, carry := u256.AddOverflow(sqrtP, quotient)
		if carry {
			return u256.Zero, ErrPriceOverflow
		}
		return next, nil
	}
	quotient, overflow := u256.MulDivRoundingUp(amount, u256.Q96, liquidity)
	if overflow || !sqrtP.Gt(quotient) {
		return u256.Zero, ErrAmountTooLarge
	}
	return u256.Sub(sqrtP, quotient), nil
}

// NextSqrtPriceFromInput returns the price after swapping amountIn of the
// input token (token0 when zeroForOne, token1 otherwise).
func NextSqrtPriceFromInput(sqrtP, liquidity, amountIn u256.Int, zeroForOne bool) (u256.Int, error) {
	if sqrtP.IsZero() {
		return u256.Zero, ErrPriceOverflow
	}
	if zeroForOne {
		return NextSqrtPriceFromAmount0(sqrtP, liquidity, amountIn, true)
	}
	return NextSqrtPriceFromAmount1(sqrtP, liquidity, amountIn, true)
}

// NextSqrtPriceFromOutput returns the price after receiving amountOut of the
// output token (token1 when zeroForOne, token0 otherwise).
func NextSqrtPriceFromOutput(sqrtP, liquidity, amountOut u256.Int, zeroForOne bool) (u256.Int, error) {
	if sqrtP.IsZero() {
		return u256.Zero, ErrPriceOverflow
	}
	if zeroForOne {
		return NextSqrtPriceFromAmount1(sqrtP, liquidity, amountOut, false)
	}
	return NextSqrtPriceFromAmount0(sqrtP, liquidity, amountOut, false)
}
