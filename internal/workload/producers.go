package workload

import "fmt"

// Producers derives n independent multi-pool generators for n concurrent
// producer goroutines feeding one node. Each producer gets its own
// seed (mixed from the base seed and the producer index) and a distinct
// transaction-ID namespace ("p<i>/..."), so producers share no RNG state
// and never collide on IDs, while drawing on the identical user
// population — the generators stay individually deterministic even
// though the cross-producer arrival interleaving is scheduler-dependent
// (the ingest front end's arrival log captures that interleaving for
// replay).
func Producers(cfg MultiConfig, n int) []*MultiGenerator {
	if n <= 0 {
		n = 1
	}
	out := make([]*MultiGenerator, n)
	for p := 0; p < n; p++ {
		sub := cfg
		sub.Seed = deriveProducerSeed(cfg.Seed, p)
		sub.IDPrefix = fmt.Sprintf("%sp%d/", cfg.IDPrefix, p)
		out[p] = NewMulti(sub)
	}
	return out
}

// deriveProducerSeed mixes the base seed with the producer index
// (splitmix-style odd constants keep adjacent indices uncorrelated).
func deriveProducerSeed(seed int64, producer int) int64 {
	z := seed + int64(producer+1)*-7046029254386353131
	z = (z ^ (z >> 30)) * -4658895280553007687
	z = (z ^ (z >> 27)) * -7723592293110705685
	return z ^ (z >> 31)
}
