package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"ammboost/internal/summary"
)

// MultiConfig parameterizes multi-pool traffic: the base per-pool mix
// plus the pool population and its popularity skew. Pool popularity
// follows a Zipf law — a few hot pools draw most of the traffic, the
// long tail stays nearly idle — matching the 2023 Uniswap V3 measurement
// the paper's workload derives from (Appendix D), where volume per pool
// is heavily concentrated.
type MultiConfig struct {
	Config
	// NumPools is the traded pool population (default 1).
	NumPools int
	// PoolIDs overrides the canonical pool naming; len must equal
	// NumPools when set. Defaults to the engine's pool-%04d scheme.
	PoolIDs []string
	// ZipfS is the Zipf skew exponent (> 1; default 1.2). Larger values
	// concentrate more traffic on the hottest pools.
	ZipfS float64
	// ZipfV is the Zipf value parameter (>= 1; default 1).
	ZipfV float64
}

// DefaultMultiConfig mirrors DefaultConfig across numPools pools.
func DefaultMultiConfig(seed int64, numPools int) MultiConfig {
	return MultiConfig{
		Config:   DefaultConfig(seed),
		NumPools: numPools,
		ZipfS:    1.2,
		ZipfV:    1,
	}
}

// MultiGenerator produces a deterministic multi-pool transaction stream.
// Each pool owns an independent sub-generator seeded from the base seed
// and the pool ID, so no RNG state is shared between pools: the content
// of pool p's k-th transaction depends only on (seed, p, k), never on how
// traffic interleaves across pools or which shard executes it.
type MultiGenerator struct {
	cfg  MultiConfig
	ids  []string
	pick *rand.Rand // pool-choice stream, separate from tx content
	zipf *rand.Zipf
	gens map[string]*Generator
}

// NewMulti creates a multi-pool generator.
func NewMulti(cfg MultiConfig) *MultiGenerator {
	if cfg.NumPools <= 0 {
		cfg.NumPools = 1
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfV < 1 {
		cfg.ZipfV = 1
	}
	ids := cfg.PoolIDs
	if len(ids) == 0 {
		ids = make([]string, cfg.NumPools)
		for i := range ids {
			ids[i] = poolName(i)
		}
	}
	pick := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed9001))
	m := &MultiGenerator{
		cfg:  cfg,
		ids:  ids,
		pick: pick,
		zipf: rand.NewZipf(pick, cfg.ZipfS, cfg.ZipfV, uint64(len(ids)-1)),
		gens: make(map[string]*Generator, len(ids)),
	}
	for _, id := range ids {
		sub := cfg.Config
		sub.Seed = derivePoolSeed(cfg.Seed, id)
		// Compose with any caller prefix (e.g. a per-producer namespace)
		// so IDs stay collision-free across pools AND producers.
		sub.IDPrefix = cfg.IDPrefix + id + ":"
		m.gens[id] = New(sub)
	}
	return m
}

// poolName matches engine.PoolName without importing the engine.
func poolName(i int) string { return fmt.Sprintf("pool-%04d", i) }

// derivePoolSeed mixes the base seed with the pool ID so every pool's
// sub-generator runs an independent deterministic RNG.
func derivePoolSeed(seed int64, poolID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(poolID))
	return seed ^ int64(h.Sum64())
}

// PoolIDs returns the traded pool IDs, hottest-first (Zipf rank order).
func (m *MultiGenerator) PoolIDs() []string { return m.ids }

// Users returns the shared user population (identical across pools: the
// per-pool sub-generators derive the same user names).
func (m *MultiGenerator) Users() []string { return m.gens[m.ids[0]].Users() }

// LPs returns the shared liquidity-provider subset.
func (m *MultiGenerator) LPs() []string { return m.gens[m.ids[0]].LPs() }

// Next produces the next transaction: a Zipf draw ranks the pool, the
// pool's own sub-generator produces the transaction content, and the
// engine routes it by PoolID.
func (m *MultiGenerator) Next() *summary.Tx {
	id := m.ids[int(m.zipf.Uint64())]
	tx := m.gens[id].Next()
	tx.PoolID = id
	return tx
}

// NextFor produces the next transaction for a specific pool (sweeps that
// want uniform per-pool batches rather than Zipf traffic).
func (m *MultiGenerator) NextFor(poolID string) *summary.Tx {
	g := m.gens[poolID]
	if g == nil {
		return nil
	}
	tx := g.Next()
	tx.PoolID = poolID
	return tx
}
