package workload

import (
	"testing"
)

// TestMultiDeterminism: same seed, same stream — including pool routing.
func TestMultiDeterminism(t *testing.T) {
	a := NewMulti(DefaultMultiConfig(9, 32))
	b := NewMulti(DefaultMultiConfig(9, 32))
	for i := 0; i < 2000; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.ID != tb.ID || ta.PoolID != tb.PoolID || ta.Kind != tb.Kind || ta.User != tb.User {
			t.Fatalf("stream diverged at %d: %+v vs %+v", i, ta, tb)
		}
	}
}

// TestMultiZipfSkew: the Zipf head must dominate and the IDs must route
// to registered pools only.
func TestMultiZipfSkew(t *testing.T) {
	const pools, draws = 32, 20000
	g := NewMulti(DefaultMultiConfig(3, pools))
	valid := make(map[string]bool, pools)
	for _, id := range g.PoolIDs() {
		valid[id] = true
	}
	counts := make(map[string]int)
	for i := 0; i < draws; i++ {
		tx := g.Next()
		if !valid[tx.PoolID] {
			t.Fatalf("tx routed to unregistered pool %q", tx.PoolID)
		}
		counts[tx.PoolID]++
	}
	hottest := counts[g.PoolIDs()[0]]
	if hottest < draws/10 {
		t.Errorf("hottest pool drew %d/%d, want a dominant Zipf head", hottest, draws)
	}
	spread := 0
	for _, c := range counts {
		if c > 0 {
			spread++
		}
	}
	if spread < pools/4 {
		t.Errorf("only %d/%d pools drew traffic; tail too thin", spread, pools)
	}
}

// TestMultiUniqueIDsAcrossPools: transaction IDs (and therefore derived
// position IDs) are namespaced per pool.
func TestMultiUniqueIDsAcrossPools(t *testing.T) {
	g := NewMulti(DefaultMultiConfig(5, 16))
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		tx := g.Next()
		if seen[tx.ID] {
			t.Fatalf("duplicate tx ID %q", tx.ID)
		}
		seen[tx.ID] = true
	}
}

// TestMultiPoolNameMatchesEngineScheme pins the default naming the
// engine relies on.
func TestMultiPoolNameMatchesEngineScheme(t *testing.T) {
	g := NewMulti(DefaultMultiConfig(1, 3))
	want := []string{"pool-0000", "pool-0001", "pool-0002"}
	for i, id := range g.PoolIDs() {
		if id != want[i] {
			t.Errorf("PoolIDs[%d] = %q, want %q", i, id, want[i])
		}
	}
}
