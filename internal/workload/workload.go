// Package workload generates synthetic AMM traffic following the paper's
// measured Uniswap V3 distribution for 2023 (Appendix D, Table VII):
// 93.19% swaps, 2.14% mints, 2.38% burns, 2.27% collects, with per-type
// transaction sizes and a constant arrival rate ρ = ⌈V_D·bt/86400⌉
// transactions per sidechain round for a configured daily volume V_D.
package workload

import (
	"fmt"
	"math/rand"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

// Distribution is a traffic mix in percent. The four shares should sum to
// 100 (validated by Normalize).
type Distribution struct {
	SwapPct    float64
	MintPct    float64
	BurnPct    float64
	CollectPct float64
}

// UniswapDistribution is the 2023 Uniswap V3 traffic mix (Table VII).
var UniswapDistribution = Distribution{SwapPct: 93.19, MintPct: 2.14, BurnPct: 2.38, CollectPct: 2.27}

// Sum returns the total percentage mass.
func (d Distribution) Sum() float64 {
	return d.SwapPct + d.MintPct + d.BurnPct + d.CollectPct
}

// Rho returns the per-round arrival count for a daily volume and round
// duration in seconds: ρ = ⌈V_D·bt/86400⌉ (Section VI-A).
func Rho(dailyVolume int, roundSeconds float64) int {
	rho := float64(dailyVolume) * roundSeconds / 86400.0
	n := int(rho)
	if float64(n) < rho {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Config parameterizes the generator.
type Config struct {
	Seed         int64
	Distribution Distribution
	// IDPrefix namespaces transaction IDs (and therefore derived position
	// IDs); multi-pool generation sets it per pool so IDs never collide
	// across pools.
	IDPrefix string
	// NumUsers is the trading population (paper: 100).
	NumUsers int
	// LPFraction of users provide liquidity (and own positions).
	LPFraction float64
	// MaxPositionsPerLP bounds live positions so sync cost scales with
	// the user population, matching the paper's observation.
	MaxPositionsPerLP int
	// SwapAmountMax bounds swap input sizes (uniform in [1, max]).
	SwapAmountMax uint64
	// MintAmountMax bounds per-mint funding.
	MintAmountMax uint64
	// TickSpan bounds position ranges around the current price.
	TickSpan int32
	// TickSpacing aligns position bounds.
	TickSpacing int32
}

// DefaultConfig mirrors the paper's experiment setup.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		Distribution:      UniswapDistribution,
		NumUsers:          100,
		LPFraction:        0.25,
		MaxPositionsPerLP: 3,
		SwapAmountMax:     2_000_000,
		MintAmountMax:     50_000_000,
		TickSpan:          1200,
		TickSpacing:       60,
	}
}

// position tracks a live LP position the generator may burn/collect.
type position struct {
	id        string
	owner     string
	liquidity u256.Int // approximate; burns request fractions
}

// Generator produces a deterministic stream of sidechain transactions.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	users []string
	lps   []string
	// positions per LP, and each position's fixed tick range.
	positions map[string][]*position
	ranges    map[string][2]int32
	seq       int
}

// New creates a generator.
func New(cfg Config) *Generator {
	if cfg.NumUsers <= 0 {
		cfg.NumUsers = 100
	}
	g := &Generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		positions: make(map[string][]*position),
	}
	numLPs := int(float64(cfg.NumUsers) * cfg.LPFraction)
	if numLPs < 1 {
		numLPs = 1
	}
	for i := 0; i < cfg.NumUsers; i++ {
		u := fmt.Sprintf("user-%03d", i)
		g.users = append(g.users, u)
		if i < numLPs {
			g.lps = append(g.lps, u)
		}
	}
	return g
}

// Users returns all user IDs.
func (g *Generator) Users() []string { return g.users }

// LPs returns the liquidity-provider subset.
func (g *Generator) LPs() []string { return g.lps }

// Next produces the next transaction in the stream.
func (g *Generator) Next() *summary.Tx {
	g.seq++
	id := fmt.Sprintf("%stx-%08d", g.cfg.IDPrefix, g.seq)
	d := g.cfg.Distribution
	total := d.Sum()
	roll := g.rng.Float64() * total
	switch {
	case roll < d.SwapPct:
		return g.nextSwap(id)
	case roll < d.SwapPct+d.MintPct:
		return g.nextMint(id)
	case roll < d.SwapPct+d.MintPct+d.BurnPct:
		return g.nextBurn(id)
	default:
		return g.nextCollect(id)
	}
}

func (g *Generator) nextSwap(id string) *summary.Tx {
	user := g.users[g.rng.Intn(len(g.users))]
	amount := uint64(g.rng.Int63n(int64(g.cfg.SwapAmountMax))) + 1
	return &summary.Tx{
		ID: id, Kind: gasmodel.KindSwap, User: user,
		ZeroForOne: g.rng.Intn(2) == 0,
		ExactIn:    g.rng.Float64() < 0.8, // exact-input dominates in practice
		Amount:     u256.FromUint64(amount),
		SizeBytes:  gasmodel.MainnetSwapTxBytes,
	}
}

func (g *Generator) nextMint(id string) *summary.Tx {
	lp := g.lps[g.rng.Intn(len(g.lps))]
	amount := uint64(g.rng.Int63n(int64(g.cfg.MintAmountMax))) + 1000
	tx := &summary.Tx{
		ID: id, Kind: gasmodel.KindMint, User: lp,
		Amount0Desired: u256.FromUint64(amount),
		Amount1Desired: u256.FromUint64(amount),
		SizeBytes:      gasmodel.MainnetMintTxBytes,
	}
	// Top up an existing position when the LP is at its cap; otherwise
	// open a new symmetric range around the current price.
	if ps := g.positions[lp]; len(ps) >= g.cfg.MaxPositionsPerLP {
		p := ps[g.rng.Intn(len(ps))]
		tx.PosID = p.id
		// Ranges are fixed per position; the executor validates them.
		tx.TickLower, tx.TickUpper = g.rangeFor(p.id)
	} else {
		span := (g.rng.Int31n(g.cfg.TickSpan/g.cfg.TickSpacing) + 1) * g.cfg.TickSpacing
		tx.TickLower, tx.TickUpper = -span, span
		posID := summary.DerivePositionID(id, lp)
		g.positions[lp] = append(g.positions[lp], &position{id: posID, owner: lp})
		g.rememberRange(posID, -span, span)
	}
	return tx
}

func (g *Generator) rememberRange(posID string, lower, upper int32) {
	if g.ranges == nil {
		g.ranges = make(map[string][2]int32)
	}
	g.ranges[posID] = [2]int32{lower, upper}
}

func (g *Generator) rangeFor(posID string) (int32, int32) {
	r := g.ranges[posID]
	return r[0], r[1]
}

func (g *Generator) nextBurn(id string) *summary.Tx {
	lp, p := g.randomPosition()
	if p == nil {
		return g.nextSwap(id) // no positions yet: degenerate to a swap
	}
	// Burn a fraction; occasionally a full withdrawal that deletes it.
	full := g.rng.Float64() < 0.2
	tx := &summary.Tx{
		ID: id, Kind: gasmodel.KindBurn, User: lp, PosID: p.id,
		SizeBytes: gasmodel.MainnetBurnTxBytes,
	}
	if full {
		tx.BurnFractionBps = 10_000
		g.removePosition(lp, p.id)
	} else {
		tx.BurnFractionBps = uint32(g.rng.Intn(5000) + 1000) // 10–60%
	}
	return tx
}

func (g *Generator) nextCollect(id string) *summary.Tx {
	lp, p := g.randomPosition()
	if p == nil {
		return g.nextSwap(id)
	}
	return &summary.Tx{
		ID: id, Kind: gasmodel.KindCollect, User: lp, PosID: p.id,
		Collect0: u256.Max, Collect1: u256.Max,
		SizeBytes: gasmodel.MainnetCollectTxBytes,
	}
}

func (g *Generator) randomPosition() (string, *position) {
	if len(g.lps) == 0 {
		return "", nil
	}
	// Try a few LPs for one with positions.
	for i := 0; i < 4; i++ {
		lp := g.lps[g.rng.Intn(len(g.lps))]
		if ps := g.positions[lp]; len(ps) > 0 {
			return lp, ps[g.rng.Intn(len(ps))]
		}
	}
	return "", nil
}

func (g *Generator) removePosition(lp, id string) {
	ps := g.positions[lp]
	for i, p := range ps {
		if p.id == id {
			g.positions[lp] = append(ps[:i], ps[i+1:]...)
			return
		}
	}
}
