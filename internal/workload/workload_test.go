package workload

import (
	"testing"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
)

func TestRho(t *testing.T) {
	cases := []struct {
		vd    int
		round float64
		want  int
	}{
		{50_000, 7, 5},        // ceil(4.05)
		{500_000, 7, 41},      // ceil(40.5)
		{25_000_000, 7, 2026}, // ceil(2025.5)
		{1, 7, 1},             // floor of 1
	}
	for _, c := range cases {
		if got := Rho(c.vd, c.round); got != c.want {
			t.Errorf("Rho(%d, %.0f) = %d, want %d", c.vd, c.round, got, c.want)
		}
	}
}

func TestDistributionMatchesConfig(t *testing.T) {
	g := New(DefaultConfig(1))
	const n = 200_000
	counts := map[gasmodel.TxKind]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	check := func(kind gasmodel.TxKind, wantPct, tolerance float64) {
		got := 100 * float64(counts[kind]) / n
		if got < wantPct-tolerance || got > wantPct+tolerance {
			t.Errorf("%s share = %.2f%%, want %.2f%%±%.1f", kind, got, wantPct, tolerance)
		}
	}
	check(gasmodel.KindSwap, 93.19, 1.0)
	check(gasmodel.KindMint, 2.14, 0.5)
	// Burns/collects degrade to swaps before any position exists, so they
	// run slightly under their nominal share.
	if counts[gasmodel.KindBurn] == 0 || counts[gasmodel.KindCollect] == 0 {
		t.Error("burns/collects never generated")
	}
}

func TestDeterministicStream(t *testing.T) {
	a, b := New(DefaultConfig(7)), New(DefaultConfig(7))
	for i := 0; i < 5000; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.ID != tb.ID || ta.Kind != tb.Kind || ta.User != tb.User || !ta.Amount.Eq(tb.Amount) {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestBurnsReferenceLivePositions(t *testing.T) {
	g := New(DefaultConfig(3))
	seenPos := map[string]bool{}
	for i := 0; i < 50_000; i++ {
		tx := g.Next()
		switch tx.Kind {
		case gasmodel.KindMint:
			if tx.PosID == "" {
				// New position: remember the derived ID.
				seenPos[summary.DerivePositionID(tx.ID, tx.User)] = true
			} else if !seenPos[tx.PosID] {
				t.Fatalf("mint top-up references unknown position %s", tx.PosID)
			}
		case gasmodel.KindBurn, gasmodel.KindCollect:
			if tx.PosID == "" || !seenPos[tx.PosID] {
				t.Fatalf("%s references unknown position %q", tx.Kind, tx.PosID)
			}
		}
	}
}

func TestPositionCapHolds(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MaxPositionsPerLP = 2
	g := New(cfg)
	for i := 0; i < 50_000; i++ {
		g.Next()
	}
	for lp, ps := range g.positions {
		if len(ps) > 2 {
			t.Errorf("%s has %d positions, cap 2", lp, len(ps))
		}
	}
}

func TestMintRangesAligned(t *testing.T) {
	g := New(DefaultConfig(5))
	for i := 0; i < 20_000; i++ {
		tx := g.Next()
		if tx.Kind != gasmodel.KindMint {
			continue
		}
		if tx.TickLower >= tx.TickUpper {
			t.Fatalf("inverted range %d..%d", tx.TickLower, tx.TickUpper)
		}
		if tx.TickLower%60 != 0 || tx.TickUpper%60 != 0 {
			t.Fatalf("unaligned ticks %d..%d", tx.TickLower, tx.TickUpper)
		}
	}
}

func TestCustomDistribution(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Distribution = Distribution{SwapPct: 60, MintPct: 20, BurnPct: 10, CollectPct: 10}
	g := New(cfg)
	counts := map[gasmodel.TxKind]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	mintPct := 100 * float64(counts[gasmodel.KindMint]) / n
	if mintPct < 18 || mintPct > 22 {
		t.Errorf("mint share = %.1f%%, want ~20%%", mintPct)
	}
}
