// Package rollup implements ammOP, the Optimism-inspired rollup baseline
// the paper compares against (Section VI-D): transactions are processed in
// 1.8 MB batches taking ~35 s each (three Ethereum rounds), the batch
// transcript is posted to the mainchain as calldata (no pruning — the
// defining storage cost of optimistic rollups), and token payouts finalize
// only after the 7-day contestation period.
package rollup

import (
	"time"

	"ammboost/internal/amm"
	"ammboost/internal/metrics"
	"ammboost/internal/sim"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

// Config parameterizes ammOP.
type Config struct {
	// BatchBytes is the rollup batch capacity (Optimism: 1.8 MB).
	BatchBytes int
	// BatchInterval is the batch processing cadence (~3 Ethereum rounds).
	BatchInterval time.Duration
	// Contestation is the fraud-proof window delaying withdrawals.
	Contestation time.Duration
	// FeePips / InitialLiquidity seed the pool as in the other backends.
	FeePips          uint32
	InitialLiquidity u256.Int
}

// DefaultConfig mirrors the paper's ammOP parameters.
func DefaultConfig() Config {
	return Config{
		BatchBytes:    1_800_000,
		BatchInterval: 35 * time.Second,
		Contestation:  7 * 24 * time.Hour,
		FeePips:       3000,
	}
}

// Runner drives the ammOP simulation.
type Runner struct {
	cfg  Config
	sim  *sim.Simulator
	exec *summary.Executor
	col  *metrics.Collector

	queue   []*summary.Tx
	stopped bool

	// Batches posted on the mainchain (transcript bytes, never pruned).
	BatchesPosted  int
	MainchainBytes int
	Processed      int
	Rejected       int
}

// New builds an ammOP deployment with a seeded pool.
func New(cfg Config) (*Runner, error) {
	if cfg.BatchBytes == 0 {
		cfg = DefaultConfig()
	}
	if cfg.InitialLiquidity.IsZero() {
		cfg.InitialLiquidity = u256.MustFromDecimal("10000000000000")
	}
	pool, err := amm.NewPool("A", "B", cfg.FeePips, 60, u256.Q96)
	if err != nil {
		return nil, err
	}
	if _, err := pool.Mint("genesis-pos", "lp-genesis", -887220, 887220, cfg.InitialLiquidity); err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:  cfg,
		sim:  sim.New(),
		exec: summary.NewExecutor(0, pool, nil),
		col:  metrics.New(),
	}
	return r, nil
}

// Sim exposes the simulator for traffic scheduling.
func (r *Runner) Sim() *sim.Simulator { return r.sim }

// Collector exposes metrics.
func (r *Runner) Collector() *metrics.Collector { return r.col }

// Submit queues a transaction at the current virtual time.
func (r *Runner) Submit(tx *summary.Tx) {
	if _, ok := r.exec.Deposits[tx.User]; !ok {
		big := u256.Shl(u256.One, 200)
		r.exec.AddDeposit(tx.User, big, big)
	}
	tx.SubmittedAt = r.sim.Now()
	r.queue = append(r.queue, tx)
}

// Run processes batches until `traffic` has elapsed and the queue drains,
// then reports.
func (r *Runner) Run(traffic time.Duration) {
	r.scheduleBatch()
	r.sim.RunUntil(traffic)
	// Drain.
	for len(r.queue) > 0 {
		r.sim.RunUntil(r.sim.Now() + r.cfg.BatchInterval)
	}
	r.stopped = true
	r.sim.RunUntil(r.sim.Now() + r.cfg.BatchInterval)
}

func (r *Runner) scheduleBatch() {
	r.sim.After(r.cfg.BatchInterval, func() {
		r.processBatch()
		if !r.stopped {
			r.scheduleBatch()
		}
	})
}

func (r *Runner) processBatch() {
	now := r.sim.Now()
	bytes := 0
	consumed := 0
	for _, tx := range r.queue {
		if tx.SubmittedAt > now {
			break
		}
		if bytes+tx.Size() > r.cfg.BatchBytes {
			break
		}
		consumed++
		if err := r.exec.Apply(tx, uint64(now/r.cfg.BatchInterval)); err != nil {
			r.Rejected++
			continue
		}
		bytes += tx.Size()
		r.Processed++
		r.col.ObserveTx(metrics.TxObservation{
			Kind:        tx.Kind,
			SubmittedAt: tx.SubmittedAt,
			MinedAt:     now,
			// Withdrawals finalize after the contestation window.
			PayoutAt: now + r.cfg.Contestation,
		})
	}
	r.queue = r.queue[consumed:]
	if bytes > 0 {
		r.BatchesPosted++
		// The whole transcript lands on the mainchain and stays there.
		r.MainchainBytes += bytes + 600 // batch framing overhead
	}
}
