package rollup

import (
	"fmt"
	"testing"
	"time"

	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/u256"
)

func swapTx(id string) *summary.Tx {
	return &summary.Tx{ID: id, Kind: gasmodel.KindSwap, User: "alice",
		ZeroForOne: true, ExactIn: true, Amount: u256.FromUint64(1000)}
}

func TestBatchCadence(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.Sim().At(time.Second, func() { r.Submit(swapTx("a")) })
	r.Run(40 * time.Second)
	if r.Processed != 1 || r.BatchesPosted != 1 {
		t.Errorf("processed=%d batches=%d", r.Processed, r.BatchesPosted)
	}
	obs := r.Collector()
	// The tx waited for the first 35 s batch.
	if lat := obs.AvgSCLatency(); lat < 30*time.Second || lat > 40*time.Second {
		t.Errorf("latency = %s, want ~34s", lat)
	}
}

func TestContestationDelaysPayout(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.Sim().At(time.Second, func() { r.Submit(swapTx("a")) })
	r.Run(40 * time.Second)
	payout := r.Collector().AvgPayoutLatency()
	if payout < 7*24*time.Hour {
		t.Errorf("payout latency = %s, must include the 7-day window", payout)
	}
}

func TestBatchCapacityBounds(t *testing.T) {
	cfg := DefaultConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Submit far more than one batch holds (1.8MB / ~1008B ≈ 1785 swaps);
	// Run drains the queue, so the batch count reveals the capacity.
	for i := 0; i < 4000; i++ {
		r.Submit(swapTx(fmt.Sprintf("tx%d", i)))
	}
	r.Run(36 * time.Second)
	if r.Processed != 4000 {
		t.Errorf("processed %d of 4000", r.Processed)
	}
	if r.BatchesPosted != 3 { // 1785 + 1785 + 430
		t.Errorf("batches = %d, want 3 at ~1785 tx/batch", r.BatchesPosted)
	}
}

func TestTranscriptNeverPruned(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		r.Submit(swapTx(fmt.Sprintf("tx%d", i)))
	}
	r.Run(80 * time.Second)
	wantMin := 1000 * gasmodel.MainnetSwapTxBytes
	if r.MainchainBytes < wantMin {
		t.Errorf("mainchain bytes = %d, want >= %d (full transcript posted)", r.MainchainBytes, wantMin)
	}
}

func TestThroughputCapsAtBatchRate(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Arrival far above the ~51 tx/s capacity (1.8MB/35s/1008B).
	for i := 0; i < 60_000; i++ {
		at := time.Duration(i) * time.Millisecond * 5 // 200 tx/s
		r.Sim().At(at, func() { r.Submit(swapTx(fmt.Sprintf("x%d", i))) })
	}
	r.Run(300 * time.Second)
	tp := r.Collector().Throughput()
	if tp < 40 || tp > 60 {
		t.Errorf("saturated throughput = %.2f tx/s, want ~51", tp)
	}
}
