// Root benchmarks: one testing.B benchmark per table and figure in the
// paper's evaluation. Each iteration regenerates the full experiment
// through internal/experiments; `go test -bench=. -benchmem` therefore
// reproduces the entire evaluation section. Heavy parameter sweeps run at
// a reduced epoch count to keep a benchmark iteration tractable — the
// full 11-epoch paper configuration is available via `cmd/ammbench`.
package ammboost

import (
	"testing"

	"ammboost/internal/experiments"
)

// benchOpts returns experiment options sized for benchmark iterations.
func benchOpts(epochs int) experiments.Options {
	return experiments.Options{Epochs: epochs, Seed: 42, CommitteeSize: 500}
}

func runExperiment(b *testing.B, name string, opts experiments.Options) {
	b.Helper()
	runner := experiments.Registry()[name]
	if runner == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	for i := 0; i < b.N; i++ {
		res, err := runner(opts)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if len(res.Render()) == 0 {
			b.Fatalf("%s: empty result", name)
		}
	}
}

// BenchmarkTable1 regenerates the layer-2 comparison table (measured
// ammBoost row at V_D = 25M).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", benchOpts(3)) }

// BenchmarkTable2 regenerates the itemized ammBoost gas/latency table
// (V_D = 500K, full 11 epochs).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", benchOpts(11)) }

// BenchmarkTable3 regenerates the baseline Uniswap per-operation table.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3", benchOpts(11)) }

// BenchmarkTable4 regenerates the storage-overhead table from the actual
// encoders.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4", benchOpts(11)) }

// BenchmarkFig5 regenerates the headline gas/growth comparison
// (V_D = 500K, full 11 epochs, both deployments).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5", benchOpts(11)) }

// BenchmarkTable5 regenerates the scalability sweep
// (V_D ∈ {50K, 500K, 5M, 25M}).
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5", benchOpts(4)) }

// BenchmarkTable6 regenerates the ammBoost vs ammOP comparison (V_D = 25M).
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6", benchOpts(4)) }

// BenchmarkTable7 regenerates the Uniswap traffic analysis from the
// synthetic year trace.
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7", benchOpts(11)) }

// BenchmarkTable8 regenerates the block-size sweep (V_D = 50M).
func BenchmarkTable8(b *testing.B) { runExperiment(b, "table8", benchOpts(3)) }

// BenchmarkTable9 regenerates the round-duration sweep (V_D = 25M).
func BenchmarkTable9(b *testing.B) { runExperiment(b, "table9", benchOpts(3)) }

// BenchmarkTable10 regenerates the rounds-per-epoch sweep (V_D = 25M).
func BenchmarkTable10(b *testing.B) { runExperiment(b, "table10", benchOpts(3)) }

// BenchmarkTable11 regenerates the traffic-distribution sweep (V_D = 25M).
func BenchmarkTable11(b *testing.B) { runExperiment(b, "table11", benchOpts(3)) }

// BenchmarkTable12 regenerates the committee-size/agreement-time table.
func BenchmarkTable12(b *testing.B) { runExperiment(b, "table12", benchOpts(11)) }

// BenchmarkAblations regenerates the design-choice ablation table
// (pruning, TSQC vs multisig, summary folding, mass-sync batching).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations", benchOpts(4)) }

// BenchmarkPoolScale regenerates the multi-pool sharded-execution sweep:
// pool count × shard count over identical Zipf traffic, reporting
// wall-clock speedup over single-shard execution and verifying the epoch
// summary roots stay bit-identical across shard counts.
func BenchmarkPoolScale(b *testing.B) { runExperiment(b, "poolscale", benchOpts(2)) }

// BenchmarkPipelineScale regenerates the epoch-lifecycle pipeline sweep:
// PipelineDepth {1, 2, 3} over identical traffic, reporting wall-clock
// speedup, commit-stage stall, and the payout-latency trade, and
// verifying the summary roots stay bit-identical across depths.
func BenchmarkPipelineScale(b *testing.B) { runExperiment(b, "pipelinescale", benchOpts(3)) }
