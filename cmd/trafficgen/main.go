// Command trafficgen emits a synthetic AMM transaction trace with the
// paper's measured Uniswap 2023 distribution (Appendix D / Table VII), in
// CSV: id,kind,user,size_bytes,amount.
//
// Usage:
//
//	trafficgen [-n COUNT] [-seed S] [-swap P -mint P -burn P -collect P]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ammboost/internal/workload"
)

func main() {
	n := flag.Int("n", 100_000, "number of transactions")
	seed := flag.Int64("seed", 1, "generator seed")
	swap := flag.Float64("swap", 93.19, "swap share (%)")
	mint := flag.Float64("mint", 2.14, "mint share (%)")
	burn := flag.Float64("burn", 2.38, "burn share (%)")
	collect := flag.Float64("collect", 2.27, "collect share (%)")
	flag.Parse()

	cfg := workload.DefaultConfig(*seed)
	cfg.Distribution = workload.Distribution{
		SwapPct: *swap, MintPct: *mint, BurnPct: *burn, CollectPct: *collect,
	}
	gen := workload.New(cfg)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "id,kind,user,size_bytes,amount")
	for i := 0; i < *n; i++ {
		tx := gen.Next()
		fmt.Fprintf(w, "%s,%s,%s,%d,%s\n", tx.ID, tx.Kind, tx.User, tx.Size(), tx.Amount)
	}
}
