// Command trafficgen exercises the workload model two ways.
//
// The default mode emits a synthetic AMM transaction trace with the
// paper's measured Uniswap 2023 distribution (Appendix D / Table VII),
// in CSV: id,kind,user,size_bytes,amount.
//
// With -load it becomes a concurrent load driver against a live
// multi-pool node: P producer goroutines feed SubmitBatch through the
// ingest front end while the epoch lifecycle runs, honouring typed
// backpressure (ErrMempoolFull / ErrThrottled retry hints), and the run
// ends with a throughput and admission summary.
//
// Usage:
//
//	trafficgen [-n COUNT] [-seed S] [-swap P -mint P -burn P -collect P]
//	trafficgen -load [-producers P] [-batch B] [-pools N] [-shards N]
//	           [-epochs E] [-cap TX] [-n COUNT] [-seed S]
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/core"
	"ammboost/internal/summary"
	"ammboost/internal/workload"
)

func main() {
	n := flag.Int("n", 100_000, "number of transactions (total across producers in -load mode)")
	seed := flag.Int64("seed", 1, "generator seed")
	swap := flag.Float64("swap", 93.19, "swap share (%)")
	mint := flag.Float64("mint", 2.14, "mint share (%)")
	burn := flag.Float64("burn", 2.38, "burn share (%)")
	collect := flag.Float64("collect", 2.27, "collect share (%)")
	load := flag.Bool("load", false, "drive a live node concurrently instead of printing a CSV trace")
	producers := flag.Int("producers", 4, "concurrent producer goroutines (-load)")
	batch := flag.Int("batch", 64, "transactions per SubmitBatch flush (-load)")
	pools := flag.Int("pools", 8, "registered pools (-load)")
	shards := flag.Int("shards", 0, "engine worker shards, 0 = GOMAXPROCS (-load)")
	epochs := flag.Int("epochs", 3, "epochs to run (-load)")
	capacity := flag.Int("cap", 0, "ingest mempool capacity, 0 = default (-load)")
	flag.Parse()

	dist := workload.Distribution{
		SwapPct: *swap, MintPct: *mint, BurnPct: *burn, CollectPct: *collect,
	}
	if *load {
		os.Exit(runLoad(*n, *seed, dist, *producers, *batch, *pools, *shards, *epochs, *capacity))
	}

	cfg := workload.DefaultConfig(*seed)
	cfg.Distribution = dist
	gen := workload.New(cfg)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "id,kind,user,size_bytes,amount")
	for i := 0; i < *n; i++ {
		tx := gen.Next()
		fmt.Fprintf(w, "%s,%s,%s,%d,%s\n", tx.ID, tx.Kind, tx.User, tx.Size(), tx.Amount)
	}
}

// loadCounters aggregates producer-side admission outcomes across all
// goroutines (the node's own Report carries the matching server-side
// view).
type loadCounters struct {
	accepted  atomic.Int64
	retries   atomic.Int64 // mempool-full / throttled rejections retried
	abandoned atomic.Int64 // txs given up on (node closed or halted)
}

func runLoad(total int, seed int64, dist workload.Distribution, producers, batch, pools, shards, epochs, capacity int) int {
	if producers < 1 {
		producers = 1
	}
	if batch < 1 {
		batch = 1
	}
	wcfg := workload.DefaultMultiConfig(seed, pools)
	wcfg.Distribution = dist
	gens := workload.Producers(wcfg, producers)

	opts := []chain.Option{
		chain.WithSeed(seed),
		chain.WithPools(pools),
		chain.WithUsers(gens[0].Users()),
	}
	if shards > 0 {
		opts = append(opts, chain.WithShards(shards))
	}
	if capacity > 0 {
		opts = append(opts, chain.WithIngestCapacity(capacity))
	}
	sys, err := core.NewMultiSystem(chain.NewConfig(opts...), gens[0].Users())
	if err != nil {
		fmt.Fprintf(os.Stderr, "trafficgen: %v\n", err)
		return 1
	}
	defer sys.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var counters loadCounters
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := gens[p]
			quota := total / producers
			if p < total%producers {
				quota++
			}
			for sent := 0; sent < quota; {
				sz := batch
				if quota-sent < sz {
					sz = quota - sent
				}
				txs := make([]*summary.Tx, sz)
				for i := range txs {
					txs[i] = gen.Next()
				}
				sent += sz
				if !submitAll(ctx, sys, txs, &counters) {
					counters.abandoned.Add(int64(quota - sent))
					return
				}
			}
		}(p)
	}

	// The lifecycle runs here, on the main goroutine, while producers
	// hammer the ingest front end; Run keeps scheduling drain epochs as
	// long as admitted traffic is pending, so everything accepted above
	// is executed before it returns.
	rep, runErr := sys.Run(epochs)
	wg.Wait()
	wall := time.Since(start)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "trafficgen: run: %v\n", runErr)
		return 1
	}

	fmt.Printf("producers            %d\n", producers)
	fmt.Printf("batch size           %d\n", batch)
	fmt.Printf("wall time            %v\n", wall.Round(time.Millisecond))
	fmt.Printf("accepted             %d (%.0f tx/s)\n",
		counters.accepted.Load(), float64(counters.accepted.Load())/wall.Seconds())
	fmt.Printf("backpressure retries %d\n", counters.retries.Load())
	fmt.Printf("abandoned            %d\n", counters.abandoned.Load())
	fmt.Printf("ingest admitted      %d\n", rep.IngestAdmitted)
	fmt.Printf("ingest peak          %d\n", rep.IngestPeak)
	fmt.Printf("ingest rejected full %d\n", rep.IngestRejFull)
	fmt.Printf("ingest throttled     %d\n", rep.IngestThrottled)
	fmt.Printf("ingest canceled      %d\n", rep.IngestCanceled)
	fmt.Printf("epochs               %d (synced %d)\n", rep.EpochsRun, rep.SyncsOK)
	return 0
}

// submitAll pushes one batch through SubmitBatch until every
// transaction is accepted, retrying typed backpressure after the
// server's hint. Returns false when the node is done taking traffic
// (closed after its final epoch, halted, or the context ended) — the
// producer should stop.
func submitAll(ctx context.Context, sys *core.MultiSystem, txs []*summary.Tx, c *loadCounters) bool {
	pending := txs
	for len(pending) > 0 {
		res, err := sys.SubmitBatch(ctx, pending)
		if err != nil {
			var ad *chain.AdmissionError
			if errors.Is(err, chain.ErrThrottled) && errors.As(err, &ad) {
				c.retries.Add(int64(len(pending)))
				if !sleepHint(ctx, ad.RetryAfter) {
					c.abandoned.Add(int64(len(pending)))
					return false
				}
				continue
			}
			// ErrClosed / ErrHalted / ErrCanceled: the node is done with us.
			c.abandoned.Add(int64(len(pending)))
			return false
		}
		c.accepted.Add(int64(res.Accepted))
		var retry []*summary.Tx
		var hint time.Duration
		for i, e := range res.Errs {
			if e == nil {
				continue
			}
			var ad *chain.AdmissionError
			switch {
			case errors.Is(e, chain.ErrMempoolFull) && errors.As(e, &ad):
				retry = append(retry, pending[i])
				if ad.RetryAfter > hint {
					hint = ad.RetryAfter
				}
			case errors.Is(e, chain.ErrClosed), errors.Is(e, chain.ErrHalted),
				errors.Is(e, chain.ErrCanceled):
				c.abandoned.Add(int64(len(pending) - i))
				return false
			default:
				// Validation rejection: deterministic, never retry.
				c.abandoned.Add(1)
			}
		}
		if len(retry) > 0 {
			c.retries.Add(int64(len(retry)))
			if !sleepHint(ctx, hint) {
				c.abandoned.Add(int64(len(retry)))
				return false
			}
		}
		pending = retry
	}
	return true
}

// sleepHint waits out a backpressure retry hint, bailing early if the
// context ends. A zero hint yields briefly rather than spinning, and
// the hint is clamped: the server quotes its round duration (honest for
// a 7 s-round deployment), but this driver runs against a virtual-time
// node whose rounds drain in microseconds of wall clock.
func sleepHint(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		d = time.Millisecond
	}
	if d > 20*time.Millisecond {
		d = 20 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
