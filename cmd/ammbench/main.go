// Command ammbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ammbench [-epochs N] [-seed S] [-committee N] <experiment>|all
//
// Experiments: table1 table2 table3 table4 fig5 table5 table6 table7
// table8 table9 table10 table11 table12.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ammboost/internal/experiments"
)

func main() {
	epochs := flag.Int("epochs", 11, "epochs per run (paper: 11)")
	seed := flag.Int64("seed", 42, "experiment seed")
	committee := flag.Int("committee", 500, "sidechain committee size")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ammbench [flags] <experiment>|all\nexperiments: %v\n", experiments.Names())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{Epochs: *epochs, Seed: *seed, CommitteeSize: *committee}
	reg := experiments.Registry()

	var names []string
	if flag.Arg(0) == "all" {
		names = experiments.Names()
	} else {
		if _, ok := reg[flag.Arg(0)]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", flag.Arg(0), experiments.Names())
			os.Exit(2)
		}
		names = []string{flag.Arg(0)}
	}
	for _, name := range names {
		start := time.Now()
		res, err := reg[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
