// Command ammnode runs a live ammBoost deployment at demo scale and logs
// the epoch lifecycle: committee election, meta-block rounds, summary
// blocks, TSQC-authenticated syncs, and pruning, so the chain dynamics are
// observable end to end.
//
// Usage:
//
//	ammnode [-epochs N] [-daily V] [-committee N] [-seed S] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ammboost/internal/core"
	"ammboost/internal/workload"
)

func main() {
	epochs := flag.Int("epochs", 4, "epochs to run")
	daily := flag.Int("daily", 500_000, "daily transaction volume (V_D)")
	committee := flag.Int("committee", 20, "sidechain committee size")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	verbose := flag.Bool("v", false, "log every sync")
	flag.Parse()

	sysCfg := core.Config{
		Seed:          *seed,
		EpochRounds:   30,
		RoundDuration: 7 * time.Second,
		CommitteeSize: *committee,
	}
	drvCfg := core.DriverConfig{
		DailyVolume: *daily,
		Epochs:      *epochs,
		Workload:    workload.DefaultConfig(*seed),
	}
	sys, drv, err := core.NewDriver(sysCfg, drvCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: %v\n", err)
		os.Exit(1)
	}
	// Chain the logging hook in front of the driver's deposit funding.
	driverHook := sys.OnEpochStart
	sys.OnEpochStart = func(e uint64) {
		fmt.Printf("[%8s] epoch %d starts: snapshot taken, committee elected, deposits funded\n",
			sys.Sim().Now().Round(time.Second), e)
		if driverHook != nil {
			driverHook(e)
		}
	}

	fmt.Printf("ammnode: %d epochs, V_D=%d (ρ=%d tx/round), committee=%d\n",
		*epochs, *daily, drv.Rho(), *committee)
	rep := sys.Run(*epochs)
	if err := sys.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: invariant violation: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\n=== run report ===\n")
	fmt.Printf("epochs run:           %d (%.0f s simulated)\n", rep.EpochsRun, rep.Duration.Seconds())
	fmt.Printf("throughput:           %.2f tx/s\n", rep.Throughput)
	fmt.Printf("sidechain latency:    %.2f s avg\n", rep.AvgSCLatency.Seconds())
	fmt.Printf("payout latency:       %.2f s avg\n", rep.AvgPayoutLatency.Seconds())
	fmt.Printf("syncs confirmed:      %d (mass-syncs: %d, view changes: %d)\n",
		rep.SyncsOK, rep.MassSyncs, rep.ViewChanges)
	fmt.Printf("mainchain growth:     %d B, %d gas\n", rep.MainchainBytes, rep.MainchainGas)
	fmt.Printf("sidechain peak:       %d B\n", rep.SidechainPeakBytes)
	fmt.Printf("sidechain retained:   %d B (pruned %d B, %.1f%% reclaimed)\n",
		rep.SidechainRetainedBytes, rep.SidechainPrunedBytes,
		100*float64(rep.SidechainPrunedBytes)/float64(max(rep.SidechainUnpruned, 1)))
	fmt.Printf("live positions:       %d\n", rep.PositionsLive)
	fmt.Printf("rejected txs:         %d\n", rep.Rejected)
	if *verbose {
		for _, op := range rep.Collector.Ops() {
			g, n := rep.Collector.AvgGas(op)
			fmt.Printf("gas[%s]: %.0f avg over %d\n", op, g, n)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
