// Command ammnode runs a live ammBoost deployment at demo scale and logs
// the epoch lifecycle — committee election, meta-block rounds, summary
// blocks, TSQC-authenticated syncs, and pruning — from the node's event
// stream (chain.Subscribe), so the chain dynamics are observable end to
// end exactly as a client would see them.
//
// Usage:
//
//	ammnode [-epochs N] [-daily V] [-committee N] [-seed S] [-v]
//	ammnode -data-dir DIR -pools N [...]            # durable multi-pool node
//	ammnode -data-dir DIR -pools N -kill-at-epoch E # die after epoch E persists
//	ammnode -data-dir DIR -pools N -compact-every K # checkpoint every K epochs
//	ammnode -data-dir DIR -pools N -bootstrap-from PEER/ammboost.store
//
// With -data-dir the node runs the sharded multi-pool backend and
// persists every retired epoch to an append-only store in DIR. Re-running
// with the same flags resumes from the newest valid snapshot — try the
// kill/restart demo:
//
//	ammnode -data-dir /tmp/amm -pools 16 -epochs 6 -kill-at-epoch 3
//	ammnode -data-dir /tmp/amm -pools 16 -epochs 6   # recovers, runs 4-6
//
// -compact-every K rewrites the log as [header, checkpoint, tail] every K
// confirmed epochs, so restart cost stays flat no matter how long the
// node has run. -bootstrap-from seeds a FRESH -data-dir from a peer's
// store image (its ammboost.store file, ideally freshly compacted) and
// resumes from the peer's epoch instead of epoch 0 — the fast-sync path;
// the config must match the peer's chain parameters.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/core"
	"ammboost/internal/gasmodel"
	"ammboost/internal/summary"
	"ammboost/internal/trace"
	"ammboost/internal/u256"
	"ammboost/internal/workload"
)

func main() {
	epochs := flag.Int("epochs", 4, "epochs to run")
	daily := flag.Int("daily", 500_000, "daily transaction volume (V_D)")
	committee := flag.Int("committee", 20, "sidechain committee size")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	verbose := flag.Bool("v", false, "log meta-blocks and per-op gas")
	dataDir := flag.String("data-dir", "", "durable store directory (enables the multi-pool persistent node)")
	pools := flag.Int("pools", 0, "registered pools (required with -data-dir)")
	killAt := flag.Int("kill-at-epoch", 0, "exit abruptly (kill -9 style) once epoch N has persisted")
	compactEvery := flag.Int("compact-every", 0, "compact the durable store every N confirmed epochs (0 = never; requires -data-dir)")
	bootstrapFrom := flag.String("bootstrap-from", "", "fast-sync a fresh -data-dir from this peer store image (a compacted ammboost.store file)")
	adminAddr := flag.String("admin", "", "serve the telemetry surface (/metrics /healthz /trace /debug/pprof) on this address, e.g. 127.0.0.1:6060; the process stays alive after the run until SIGINT")
	flag.Parse()

	if *dataDir != "" {
		os.Exit(runDurable(*dataDir, *pools, *epochs, *daily, *committee, *seed, *killAt, *compactEvery, *bootstrapFrom, *verbose, *adminAddr))
	}
	if *compactEvery > 0 || *bootstrapFrom != "" {
		fmt.Fprintln(os.Stderr, "ammnode: -compact-every and -bootstrap-from require -data-dir (they act on the durable store)")
		os.Exit(2)
	}

	var tr *trace.Tracer
	cfgOpts := []chain.Option{
		chain.WithSeed(*seed),
		chain.WithEpochRounds(30),
		chain.WithRoundDuration(7 * time.Second),
		chain.WithCommittee(*committee),
	}
	if *adminAddr != "" {
		tr = trace.New(16)
		cfgOpts = append(cfgOpts, chain.WithTracer(tr))
	}
	sysCfg := chain.NewConfig(cfgOpts...)
	drvCfg := core.DriverConfig{
		DailyVolume: *daily,
		Epochs:      *epochs,
		Workload:    workload.DefaultConfig(*seed),
	}
	node, drv, err := core.NewDriver(sysCfg, drvCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: %v\n", err)
		os.Exit(1)
	}
	adminWait, err := serveAdmin(node, tr, *adminAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: admin listener: %v\n", err)
		os.Exit(1)
	}

	// Event-driven lifecycle log: the node publishes every stage; this
	// loop renders the ones worth a line at demo scale.
	mask := chain.MaskEpochStart | chain.MaskSummaryBlock | chain.MaskSyncSubmitted |
		chain.MaskSyncConfirmed | chain.MaskPruned | chain.MaskHalted
	if *verbose {
		mask |= chain.MaskMetaBlock
	}
	events := node.Subscribe(mask)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range events {
			ts := ev.At.Round(time.Second)
			switch ev.Type {
			case chain.EventEpochStart:
				fmt.Printf("[%8s] epoch %d starts: snapshot taken, committee elected, deposits funded\n", ts, ev.Epoch)
			case chain.EventMetaBlock:
				fmt.Printf("[%8s]   meta-block %d/%d: %d txs, %d B\n", ts, ev.Epoch, ev.Round, ev.Txs, ev.Bytes)
			case chain.EventSummaryBlock:
				fmt.Printf("[%8s]   summary-block for epoch %d: %d B checkpointed\n", ts, ev.Epoch, ev.Bytes)
			case chain.EventSyncSubmitted:
				fmt.Printf("[%8s]   sync for epoch %d submitted (%d part(s), %d B)\n", ts, ev.Epoch, ev.Parts, ev.Bytes)
			case chain.EventSyncConfirmed:
				fmt.Printf("[%8s]   sync for epoch %d confirmed: %d gas\n", ts, ev.Epoch, ev.Gas)
			case chain.EventPruned:
				fmt.Printf("[%8s]   epoch %d meta-blocks pruned\n", ts, ev.Epoch)
			case chain.EventHalted:
				fmt.Printf("[%8s] node halted: %v\n", ts, ev.Err)
			}
		}
	}()

	fmt.Printf("ammnode: %d epochs, V_D=%d (ρ=%d tx/round), committee=%d\n",
		*epochs, *daily, drv.Rho(), *committee)
	rep, err := node.Run(*epochs)
	wg.Wait() // drain the event stream before printing the report
	if err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: lifecycle fault: %v\n", err)
		os.Exit(1)
	}
	if err := node.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: invariant violation: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\n=== run report ===\n")
	fmt.Printf("epochs run:           %d (%.0f s simulated)\n", rep.EpochsRun, rep.Duration.Seconds())
	fmt.Printf("throughput:           %.2f tx/s\n", rep.Throughput)
	fmt.Printf("sidechain latency:    %.2f s avg\n", rep.AvgSCLatency.Seconds())
	fmt.Printf("payout latency:       %.2f s avg\n", rep.AvgPayoutLatency.Seconds())
	fmt.Printf("syncs confirmed:      %d (mass-syncs: %d, view changes: %d)\n",
		rep.SyncsOK, rep.MassSyncs, rep.ViewChanges)
	fmt.Printf("mainchain growth:     %d B, %d gas\n", rep.MainchainBytes, rep.MainchainGas)
	fmt.Printf("sidechain peak:       %d B\n", rep.SidechainPeakBytes)
	fmt.Printf("sidechain retained:   %d B (pruned %d B, %.1f%% reclaimed)\n",
		rep.SidechainRetainedBytes, rep.SidechainPrunedBytes,
		100*float64(rep.SidechainPrunedBytes)/float64(max(rep.SidechainUnpruned, 1)))
	fmt.Printf("live positions:       %d\n", rep.PositionsLive)
	fmt.Printf("rejected txs:         %d\n", rep.Rejected)
	fmt.Printf("lifecycle events:     ")
	for i, stage := range rep.Collector.LifecycleStages() {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("%s×%d", stage, rep.Collector.LifecycleCount(stage))
	}
	fmt.Println()
	if *verbose {
		for _, op := range rep.Collector.Ops() {
			g, n := rep.Collector.AvgGas(op)
			fmt.Printf("gas[%s]: %.0f avg over %d\n", op, g, n)
		}
	}
	printStageReport(rep)
	adminWait()
}

// printStageReport renders the report's per-stage latency histograms and
// shard-imbalance summary (present only when the run was traced).
func printStageReport(rep *chain.Report) {
	if len(rep.Stages) == 0 {
		return
	}
	fmt.Printf("\n=== stage latency (wall clock; sync-confirm is virtual time) ===\n")
	fmt.Printf("%-14s %8s %12s %12s %12s\n", "stage", "count", "p50", "p95", "p99")
	for _, st := range rep.Stages {
		fmt.Printf("%-14s %8d %12s %12s %12s\n", st.Stage, st.Count, st.P50, st.P95, st.P99)
	}
	if rep.ShardImbalanceMax > 0 {
		fmt.Printf("shard imbalance (max/mean busy): avg %.2f, worst %.2f at epoch %d\n",
			rep.ShardImbalanceAvg, rep.ShardImbalanceMax, rep.ShardImbalanceMaxEpoch)
	}
	if len(rep.PipelineStallByStage) > 0 {
		fmt.Printf("pipeline stalls by commit phase:")
		for _, stage := range []string{"queued", "commit-build", "sign", "store-encode"} {
			if d, ok := rep.PipelineStallByStage[stage]; ok {
				fmt.Printf(" %s=%s", stage, d)
			}
		}
		fmt.Println()
	}
}

// serveAdmin starts the admin telemetry listener when addr is non-empty.
// The returned wait function blocks until SIGINT/SIGTERM so the surface
// stays inspectable after the run (a no-op when the listener is off).
func serveAdmin(node chain.Chain, tr *trace.Tracer, addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	admin := chain.NewAdmin(node, tr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: admin.Handler()}
	go srv.Serve(ln)
	fmt.Printf("ammnode: admin surface on http://%s (/metrics /healthz /trace /debug/pprof)\n", ln.Addr())
	return func() {
		fmt.Printf("ammnode: run complete; admin surface stays up on http://%s — Ctrl-C to exit\n", ln.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srv.Close()
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// durableUsers is the fixed user set of a durable deployment; the store
// fingerprint pins it, so every restart must present the same set.
func durableUsers() []string {
	users := make([]string, 32)
	for i := range users {
		users[i] = fmt.Sprintf("user-%03d", i)
	}
	return users
}

// attachEpochTraffic drives the recovery-aware workload pattern: epoch
// e's transactions are derived from (seed, e) alone, so a restarted node
// regenerates exactly the traffic the uninterrupted run would have seen
// (pre-crash submissions that never executed are gone, like any
// mempool).
func attachEpochTraffic(ms *core.MultiSystem, seed int64, perEpoch int) {
	users := durableUsers()
	poolIDs := ms.PoolIDs()
	ms.OnEpochStart = func(epoch uint64) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(epoch)))
		for i := 0; i < perEpoch; i++ {
			tx := &summary.Tx{
				ID:   fmt.Sprintf("node-e%d-%d", epoch, i),
				Kind: gasmodel.KindSwap,
				User: users[rng.Intn(len(users))], PoolID: poolIDs[rng.Intn(len(poolIDs))],
				ZeroForOne: rng.Intn(2) == 0, ExactIn: true,
				Amount: u256.FromUint64(uint64(rng.Intn(1_000_000) + 1)),
			}
			if _, err := ms.Submit(context.Background(), tx); err != nil {
				fmt.Fprintf(os.Stderr, "ammnode: submit: %v\n", err)
				return
			}
		}
	}
}

// runDurable runs (or resumes) the persistent multi-pool node.
func runDurable(dataDir string, pools, epochs, daily, committee int, seed int64, killAt, compactEvery int, bootstrapFrom string, verbose bool, adminAddr string) int {
	if pools <= 0 {
		fmt.Fprintln(os.Stderr, "ammnode: -data-dir requires -pools N (the durable store backs the multi-pool engine)")
		return 2
	}
	if killAt > 0 && killAt > epochs-2 {
		// The kill fires two epoch starts after the target (when its
		// records are guaranteed on disk); later targets would silently
		// never trigger and the run would complete untested.
		fmt.Fprintf(os.Stderr, "ammnode: -kill-at-epoch %d needs at least two later epochs (max %d for -epochs %d)\n",
			killAt, epochs-2, epochs)
		return 2
	}
	var tr *trace.Tracer
	cfgOpts := []chain.Option{
		chain.WithSeed(seed),
		chain.WithPools(pools),
		chain.WithCommittee(committee),
		chain.WithUsers(durableUsers()),
		chain.WithCompactEvery(compactEvery),
	}
	if adminAddr != "" {
		tr = trace.New(16)
		cfgOpts = append(cfgOpts, chain.WithTracer(tr))
	}
	cfg := chain.NewConfig(cfgOpts...)
	var node chain.Chain
	var err error
	if bootstrapFrom != "" {
		// Fast-sync: seed a FRESH data dir from the peer's store image and
		// resume from the peer's epoch. Bootstrap refuses an existing store
		// (a node with history must recover from its own, not overwrite it)
		// and a snapshot whose fingerprint doesn't match this config.
		snapshot, rerr := os.ReadFile(bootstrapFrom)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "ammnode: read peer snapshot %s: %v\n", bootstrapFrom, rerr)
			return 1
		}
		node, err = chain.Bootstrap(dataDir, snapshot, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ammnode: bootstrap %s from %s: %v\n", dataDir, bootstrapFrom, err)
			return 1
		}
		fmt.Printf("ammnode: fast-synced %s from %s\n", dataDir, bootstrapFrom)
	} else if node, err = chain.Open(dataDir, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: open %s: %v\n", dataDir, err)
		return 1
	}
	adminWait, err := serveAdmin(node, tr, adminAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: admin listener: %v\n", err)
		return 1
	}
	ms := node.(*core.MultiSystem)
	if rec := ms.Recovery(); rec != nil {
		fmt.Printf("ammnode: recovered %s at epoch boundary %d (%d receipts restored, halted=%v)\n",
			dataDir, rec.Epoch, len(rec.Receipts), rec.Halted)
	} else {
		fmt.Printf("ammnode: fresh durable deployment in %s\n", dataDir)
	}
	perEpoch := workload.Rho(daily, cfg.RoundDuration.Seconds()) * cfg.EpochRounds
	attachEpochTraffic(ms, seed, perEpoch)
	if killAt > 0 {
		// Die without any shutdown path — no Close, no flush — exactly
		// like kill -9, once the target epoch is provably durable: its
		// snapshot is written before its sync is submitted, so a
		// confirmed sync (LastSyncedEpoch, synchronous node state)
		// implies the records are on disk. Gating on the confirmation
		// rather than a fixed epoch offset keeps the printed claim true
		// even when large-committee agreement delays stretch retirement
		// past later epoch starts.
		inner := ms.OnEpochStart
		ms.OnEpochStart = func(epoch uint64) {
			if epoch >= uint64(killAt)+2 && ms.LastSyncedEpoch() >= uint64(killAt) {
				fmt.Printf("ammnode: kill -9 with epoch %d persisted; epochs after it die with the process (rerun to recover)\n", killAt)
				os.Exit(137)
			}
			inner(epoch)
		}
	}

	mask := chain.MaskEpochStart | chain.MaskSyncSubmitted | chain.MaskSyncConfirmed |
		chain.MaskPruned | chain.MaskHalted | chain.MaskRecovered
	if verbose {
		mask |= chain.MaskMetaBlock | chain.MaskSummaryBlock
	}
	events := node.Subscribe(mask)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range events {
			ts := ev.At.Round(time.Second)
			switch ev.Type {
			case chain.EventRecovered:
				fmt.Printf("[%8s] state recovered from durable store through epoch %d\n", ts, ev.Epoch)
			case chain.EventEpochStart:
				fmt.Printf("[%8s] epoch %d starts\n", ts, ev.Epoch)
			case chain.EventSyncSubmitted:
				fmt.Printf("[%8s]   epoch %d persisted + sync submitted (%d part(s), %d B)\n",
					ts, ev.Epoch, ev.Parts, ev.Bytes)
			case chain.EventSyncConfirmed:
				fmt.Printf("[%8s]   epoch %d sync confirmed: %d gas\n", ts, ev.Epoch, ev.Gas)
			case chain.EventPruned:
				fmt.Printf("[%8s]   epoch %d meta-blocks pruned\n", ts, ev.Epoch)
			case chain.EventMetaBlock:
				fmt.Printf("[%8s]   meta-block %d/%d: %d txs\n", ts, ev.Epoch, ev.Round, ev.Txs)
			case chain.EventSummaryBlock:
				fmt.Printf("[%8s]   summary checkpoint for epoch %d (%d B)\n", ts, ev.Epoch, ev.Bytes)
			case chain.EventHalted:
				fmt.Printf("[%8s] node halted: %v\n", ts, ev.Err)
			}
		}
	}()

	rep, err := node.Run(epochs)
	wg.Wait()
	if err != nil {
		// A genuine lifecycle fault outranks any kill-timing diagnosis.
		fmt.Fprintf(os.Stderr, "ammnode: lifecycle fault: %v\n", err)
		node.Close()
		return 1
	}
	if killAt > 0 {
		// Reaching here means os.Exit(137) never fired: epoch killAt's
		// confirmation landed too late for any remaining epoch start to
		// observe it. Fail loudly — a demo that quietly completes would
		// let the operator believe a crash was tested when none was.
		fmt.Fprintf(os.Stderr, "ammnode: -kill-at-epoch %d never fired (sync confirmation outpaced by the run); nothing was crash-tested — use a smaller -committee or more -epochs\n", killAt)
		node.Close()
		return 1
	}
	if err := node.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: invariant violation: %v\n", err)
		node.Close()
		return 1
	}
	fmt.Printf("\n=== durable node report ===\n")
	fmt.Printf("epochs (total incl. recovered): %d\n", rep.EpochsRun)
	fmt.Printf("pools x shards:                 %d x %d\n", rep.NumPools, rep.NumShards)
	fmt.Printf("syncs confirmed (incl. replayed): %d\n", rep.SyncsOK)
	fmt.Printf("event drops (slow subscribers): %d\n", rep.Collector.EventDrops())
	for e := uint64(1); e <= uint64(rep.EpochsRun); e++ {
		if root, ok := rep.SummaryRoots[e]; ok && verbose {
			fmt.Printf("  epoch %2d summary root %x\n", e, root[:8])
		}
	}
	printStageReport(rep)
	adminWait()
	if err := node.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: close: %v\n", err)
		return 1
	}
	return 0
}
