// Command ammnode runs a live ammBoost deployment at demo scale and logs
// the epoch lifecycle — committee election, meta-block rounds, summary
// blocks, TSQC-authenticated syncs, and pruning — from the node's event
// stream (chain.Subscribe), so the chain dynamics are observable end to
// end exactly as a client would see them.
//
// Usage:
//
//	ammnode [-epochs N] [-daily V] [-committee N] [-seed S] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"ammboost/internal/chain"
	"ammboost/internal/core"
	"ammboost/internal/workload"
)

func main() {
	epochs := flag.Int("epochs", 4, "epochs to run")
	daily := flag.Int("daily", 500_000, "daily transaction volume (V_D)")
	committee := flag.Int("committee", 20, "sidechain committee size")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	verbose := flag.Bool("v", false, "log meta-blocks and per-op gas")
	flag.Parse()

	sysCfg := chain.NewConfig(
		chain.WithSeed(*seed),
		chain.WithEpochRounds(30),
		chain.WithRoundDuration(7*time.Second),
		chain.WithCommittee(*committee),
	)
	drvCfg := core.DriverConfig{
		DailyVolume: *daily,
		Epochs:      *epochs,
		Workload:    workload.DefaultConfig(*seed),
	}
	node, drv, err := core.NewDriver(sysCfg, drvCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: %v\n", err)
		os.Exit(1)
	}

	// Event-driven lifecycle log: the node publishes every stage; this
	// loop renders the ones worth a line at demo scale.
	mask := chain.MaskEpochStart | chain.MaskSummaryBlock | chain.MaskSyncSubmitted |
		chain.MaskSyncConfirmed | chain.MaskPruned | chain.MaskHalted
	if *verbose {
		mask |= chain.MaskMetaBlock
	}
	events := node.Subscribe(mask)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range events {
			ts := ev.At.Round(time.Second)
			switch ev.Type {
			case chain.EventEpochStart:
				fmt.Printf("[%8s] epoch %d starts: snapshot taken, committee elected, deposits funded\n", ts, ev.Epoch)
			case chain.EventMetaBlock:
				fmt.Printf("[%8s]   meta-block %d/%d: %d txs, %d B\n", ts, ev.Epoch, ev.Round, ev.Txs, ev.Bytes)
			case chain.EventSummaryBlock:
				fmt.Printf("[%8s]   summary-block for epoch %d: %d B checkpointed\n", ts, ev.Epoch, ev.Bytes)
			case chain.EventSyncSubmitted:
				fmt.Printf("[%8s]   sync for epoch %d submitted (%d part(s), %d B)\n", ts, ev.Epoch, ev.Parts, ev.Bytes)
			case chain.EventSyncConfirmed:
				fmt.Printf("[%8s]   sync for epoch %d confirmed: %d gas\n", ts, ev.Epoch, ev.Gas)
			case chain.EventPruned:
				fmt.Printf("[%8s]   epoch %d meta-blocks pruned\n", ts, ev.Epoch)
			case chain.EventHalted:
				fmt.Printf("[%8s] node halted: %v\n", ts, ev.Err)
			}
		}
	}()

	fmt.Printf("ammnode: %d epochs, V_D=%d (ρ=%d tx/round), committee=%d\n",
		*epochs, *daily, drv.Rho(), *committee)
	rep, err := node.Run(*epochs)
	wg.Wait() // drain the event stream before printing the report
	if err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: lifecycle fault: %v\n", err)
		os.Exit(1)
	}
	if err := node.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ammnode: invariant violation: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\n=== run report ===\n")
	fmt.Printf("epochs run:           %d (%.0f s simulated)\n", rep.EpochsRun, rep.Duration.Seconds())
	fmt.Printf("throughput:           %.2f tx/s\n", rep.Throughput)
	fmt.Printf("sidechain latency:    %.2f s avg\n", rep.AvgSCLatency.Seconds())
	fmt.Printf("payout latency:       %.2f s avg\n", rep.AvgPayoutLatency.Seconds())
	fmt.Printf("syncs confirmed:      %d (mass-syncs: %d, view changes: %d)\n",
		rep.SyncsOK, rep.MassSyncs, rep.ViewChanges)
	fmt.Printf("mainchain growth:     %d B, %d gas\n", rep.MainchainBytes, rep.MainchainGas)
	fmt.Printf("sidechain peak:       %d B\n", rep.SidechainPeakBytes)
	fmt.Printf("sidechain retained:   %d B (pruned %d B, %.1f%% reclaimed)\n",
		rep.SidechainRetainedBytes, rep.SidechainPrunedBytes,
		100*float64(rep.SidechainPrunedBytes)/float64(max(rep.SidechainUnpruned, 1)))
	fmt.Printf("live positions:       %d\n", rep.PositionsLive)
	fmt.Printf("rejected txs:         %d\n", rep.Rejected)
	fmt.Printf("lifecycle events:     ")
	for i, stage := range rep.Collector.LifecycleStages() {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("%s×%d", stage, rep.Collector.LifecycleCount(stage))
	}
	fmt.Println()
	if *verbose {
		for _, op := range rep.Collector.Ops() {
			g, n := rep.Collector.AvgGas(op)
			fmt.Printf("gas[%s]: %.0f avg over %d\n", op, g, n)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
